#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "core/psj.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/source.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

TEST(RandomDbTest, RespectsConstraints) {
  Rng rng(1);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kKeyedInds);
  for (int i = 0; i < 10; ++i) {
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    DWC_ASSERT_OK(db->ValidateConstraints());
    for (const std::string& name : catalog->RelationNames()) {
      EXPECT_FALSE(db->FindRelation(name)->empty()) << name;
    }
  }
}

TEST(RandomDbTest, DeterministicForSeed) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  Rng a(9), b(9);
  Result<Database> da = GenerateRandomDatabase(catalog, &a);
  Result<Database> db = GenerateRandomDatabase(catalog, &b);
  DWC_ASSERT_OK(da);
  DWC_ASSERT_OK(db);
  EXPECT_TRUE(da->SameStateAs(*db));
}

TEST(RandomDbTest, InsertableTupleIsKeyUniqueAndIndSafe) {
  Rng rng(3);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kKeyedInds);
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  // R2's key A is sampled from R1's (A, C) pairs, so at most |R1| distinct
  // keys exist; NotFound on exhaustion is the documented behaviour.
  int inserted = 0;
  for (int i = 0; i < 20; ++i) {
    Result<Tuple> tuple = GenerateInsertableTuple(*db, "R2", &rng);
    if (!tuple.ok()) {
      EXPECT_EQ(tuple.status().code(), StatusCode::kNotFound);
      break;
    }
    db->FindMutableRelation("R2")->Insert(*tuple);
    DWC_ASSERT_OK(db->ValidateConstraints());
    ++inserted;
  }
  EXPECT_GT(inserted, 0);
}

TEST(RandomViewsTest, AllViewsArePsj) {
  Rng rng(4);
  for (CatalogShape shape : {CatalogShape::kChain, CatalogShape::kKeyedInds}) {
    std::shared_ptr<Catalog> catalog = MakeCatalog(shape);
    for (int i = 0; i < 20; ++i) {
      Result<std::vector<ViewDef>> views =
          GenerateRandomPsjViews(*catalog, &rng);
      DWC_ASSERT_OK(views);
      EXPECT_FALSE(views->empty());
      Result<std::vector<PsjView>> analyzed =
          AnalyzeAllPsj(*views, *catalog);
      DWC_ASSERT_OK(analyzed);
    }
  }
}

TEST(RandomViewsTest, SjOnlyWhenProjectionDisabled) {
  Rng rng(5);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  RandomViewOptions options;
  options.project_probability = 0.0;
  for (int i = 0; i < 10; ++i) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng, options);
    DWC_ASSERT_OK(views);
    Result<std::vector<PsjView>> analyzed = AnalyzeAllPsj(*views, *catalog);
    DWC_ASSERT_OK(analyzed);
    for (const PsjView& view : *analyzed) {
      EXPECT_TRUE(view.is_sj) << view.expr->ToString();
    }
  }
}

TEST(RandomQueryTest, QueriesEvaluate) {
  Rng rng(6);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  dwc::Environment env = dwc::Environment::FromDatabase(*db);
  for (int i = 0; i < 50; ++i) {
    Result<ExprRef> query = GenerateRandomQuery(*catalog, &rng);
    DWC_ASSERT_OK(query);
    Result<Relation> result = EvalExpr(**query, env);
    DWC_ASSERT_OK(result);
  }
}

TEST(UpdateStreamTest, UpdatesPreserveConstraints) {
  Rng rng(8);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kKeyedInds);
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  Source source(*db);
  std::vector<std::string> relations = catalog->RelationNames();
  for (int i = 0; i < 50; ++i) {
    const std::string& relation = relations[rng.Below(relations.size())];
    Result<UpdateOp> op = GenerateRandomUpdate(source.db(), relation, &rng);
    DWC_ASSERT_OK(op);
    Result<CanonicalDelta> delta = source.Apply(*op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(source.db().ValidateConstraints());
  }
}

TEST(UpdateStreamTest, InsertBatchCountAndFreshness) {
  Rng rng(10);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  RandomDbOptions options;
  options.int_domain = 100000;  // Plenty of headroom.
  Result<UpdateOp> op = GenerateInsertBatch(*db, "R", 50, &rng, options);
  DWC_ASSERT_OK(op);
  EXPECT_EQ(op->inserts.size(), 50u);
  // All inserts distinct.
  Relation set(db->FindRelation("R")->schema());
  for (const Tuple& tuple : op->inserts) {
    EXPECT_TRUE(set.Insert(tuple));
  }
}

TEST(StarSchemaTest, BuildsValidSchema) {
  StarSchemaConfig config;
  config.customers = 5;
  config.suppliers = 3;
  config.parts = 6;
  config.locations = 2;
  config.orders = 10;
  config.sales = 20;
  Result<StarSchema> star = BuildStarSchema(config);
  DWC_ASSERT_OK(star);
  EXPECT_EQ(star->db.FindRelation("Sales")->size(), 20u);
  EXPECT_EQ(star->views.size(), 6u);
  DWC_ASSERT_OK(star->db.ValidateConstraints());
  Result<std::vector<PsjView>> analyzed =
      AnalyzeAllPsj(star->views, *star->catalog);
  DWC_ASSERT_OK(analyzed);
}

TEST(StarSchemaTest, SalesBatchReferencesExistingDimensions) {
  Result<StarSchema> star = BuildStarSchema({});
  DWC_ASSERT_OK(star);
  Rng rng(11);
  Result<UpdateOp> op = GenerateSalesBatch(star->db, 25, &rng);
  DWC_ASSERT_OK(op);
  EXPECT_EQ(op->inserts.size(), 25u);
  Source source(star->db);
  Result<CanonicalDelta> delta = source.Apply(*op);
  DWC_ASSERT_OK(delta);
  EXPECT_EQ(delta->inserts.size(), 25u);
  DWC_ASSERT_OK(source.db().ValidateConstraints());
}

}  // namespace
}  // namespace dwc
