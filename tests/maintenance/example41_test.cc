// E11 (DESIGN.md) — Example 4.1: incremental maintenance expressions for the
// Figure 1 warehouse under insertions into Sale, phrased over warehouse
// views only; verified equivalent to recomputation.

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "maintenance/delta.h"
#include "maintenance/plan.h"
#include "testing/test_util.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class Example41Test : public ::testing::Test {
 protected:
  void SetUp() override {
    // Example 4.1 works in the Example 1.1 setting: no referential
    // integrity, complement {C1, C2} = {C_Emp, C_Sale}.
    context_ = MustRun(Figure1Script(/*with_constraints=*/false));
    ComplementOptions options;
    options.use_constraints = false;
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(context_.catalog, context_.views, options);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
    Result<MaintenancePlan> plan = DeriveMaintenancePlan(*spec_);
    DWC_ASSERT_OK(plan);
    plan_ = std::move(plan).value();
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
  MaintenancePlan plan_;
};

TEST_F(Example41Test, PlansExistForAllAffectedPairs) {
  // Sold depends on both bases; each complement on both as well (C_Emp =
  // Emp \ pi(Sold) changes under Sale updates through Sold).
  for (const char* relation : {"Sold", "C_Emp", "C_Sale"}) {
    for (const char* base : {"Sale", "Emp"}) {
      EXPECT_NE(plan_.Find(relation, base), nullptr)
          << relation << " / " << base;
    }
  }
}

TEST_F(Example41Test, ExpressionsUseWarehouseAndDeltaNamesOnly) {
  for (const auto& [relation, per_base] : plan_.entries()) {
    for (const auto& [base, delta] : per_base) {
      for (const ExprRef& expr : {delta.plus, delta.minus}) {
        for (const std::string& name : expr->ReferencedNames()) {
          bool ok = spec_->FindWarehouseSchema(name) != nullptr ||
                    name == DeltaInsName(base) || name == DeltaDelName(base);
          EXPECT_TRUE(ok) << "plan for " << relation << "/" << base
                          << " references '" << name
                          << "': " << expr->ToString();
        }
      }
    }
  }
}

TEST_F(Example41Test, SoldPlusUsesInverseOfEmp) {
  // The paper's Sold' = Sold U (s |x| (pi_{clerk,age}(Sold) U C1)).
  // Our derivation produces Δ+Sold = ins:Sale |x| Emp with Emp replaced by
  // its inverse (modulo union order / exactness trimming). Check the
  // ingredients rather than the exact string.
  const DeltaPair* delta = plan_.Find("Sold", "Sale");
  ASSERT_NE(delta, nullptr);
  std::set<std::string> names = delta->plus->ReferencedNames();
  EXPECT_TRUE(names.count("ins:Sale") == 1) << delta->plus->ToString();
  EXPECT_TRUE(names.count("C_Emp") == 1) << delta->plus->ToString();
  EXPECT_TRUE(names.count("Sold") == 1) << delta->plus->ToString();
}

TEST_F(Example41Test, IncrementalEqualsRecomputationOnExample) {
  // Run both strategies side by side through the paper's insertion and a
  // few more updates; states must match exactly after every step.
  Source source_a(context_.db);
  Source source_b(context_.db);
  Result<Warehouse> incremental = Warehouse::Load(
      spec_, source_a.db(), MaintenanceStrategy::kIncremental);
  Result<Warehouse> recompute = Warehouse::Load(
      spec_, source_b.db(), MaintenanceStrategy::kRecomputeFromInverse);
  DWC_ASSERT_OK(incremental);
  DWC_ASSERT_OK(recompute);

  std::vector<UpdateOp> updates = {
      {"Sale", {T({S("Computer"), S("Paula")})}, {}},
      {"Sale", {T({S("Phone"), S("Mary")})}, {T({S("VCR"), S("Mary")})}},
      {"Emp", {T({S("Ivan"), I(29)})}, {}},
      {"Sale", {T({S("Desk"), S("Ivan")})}, {}},
      {"Emp", {}, {T({S("Ivan"), I(29)})}},
      {"Sale", {}, {T({S("Desk"), S("Ivan")})}},
  };
  for (const UpdateOp& op : updates) {
    Result<CanonicalDelta> da = source_a.Apply(op);
    Result<CanonicalDelta> db = source_b.Apply(op);
    DWC_ASSERT_OK(da);
    DWC_ASSERT_OK(db);
    DWC_ASSERT_OK(incremental->Integrate(*da));
    DWC_ASSERT_OK(recompute->Integrate(*db));
    DWC_ASSERT_OK(CheckConsistency(*incremental, source_a.db()));
    DWC_ASSERT_OK(CheckConsistency(*recompute, source_b.db()));
    EXPECT_TRUE(incremental->state().SameStateAs(recompute->state()));
  }
  EXPECT_EQ(source_a.query_count(), 0u);
  EXPECT_EQ(source_b.query_count(), 0u);
}

TEST_F(Example41Test, PlanToStringListsAllExpressions) {
  std::string text = plan_.ToString();
  EXPECT_NE(text.find("Δ+Sold"), std::string::npos);
  EXPECT_NE(text.find("Δ-C_Emp"), std::string::npos);
  EXPECT_NE(text.find("ins:Sale"), std::string::npos);
}

}  // namespace
}  // namespace dwc
