// E12 (DESIGN.md) — Section 4 closing remark: a selection view sigma_p(R) is
// update-independent *without* a complement, yet not query-independent.

#include <gtest/gtest.h>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "maintenance/plan.h"
#include "parser/interpreter.h"
#include "testing/test_util.h"
#include "warehouse/source.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::T;

constexpr char kScript[] = R"(
CREATE TABLE R(A INT, B INT);
INSERT INTO R VALUES (1, 10), (2, 20), (3, 30);
VIEW W AS SELECT[B >= 20](R);
)";

TEST(SelectionSelfMaintTest, PlanDerivedWithoutComplement) {
  ScriptContext context = MustRun(kScript);
  Result<MaintenancePlan> plan =
      DeriveSelectionOnlyPlan(context.views, *context.catalog);
  DWC_ASSERT_OK(plan);
  const DeltaPair* delta = plan->Find("W", "R");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->plus->ToString(), "select[(true and B >= 20)](ins:R)");
  EXPECT_EQ(delta->minus->ToString(), "select[(true and B >= 20)](del:R)");
}

TEST(SelectionSelfMaintTest, MaintainsAcrossInsertionsAndDeletions) {
  ScriptContext context = MustRun(kScript);
  Result<MaintenancePlan> plan =
      DeriveSelectionOnlyPlan(context.views, *context.catalog);
  DWC_ASSERT_OK(plan);

  Source source(context.db);
  Result<Relation> w0 = context.Evaluate(context.views[0].expr);
  DWC_ASSERT_OK(w0);
  Relation w = std::move(w0).value();

  std::vector<UpdateOp> updates = {
      {"R", {T({I(4), I(40)})}, {}},
      {"R", {T({I(5), I(5)})}, {T({I(2), I(20)})}},
      {"R", {}, {T({I(3), I(30)})}},
  };
  for (const UpdateOp& op : updates) {
    Result<CanonicalDelta> delta = source.Apply(op);
    DWC_ASSERT_OK(delta);
    Environment env;
    env.Bind("W", &w);
    env.Bind("ins:R", &delta->inserts);
    env.Bind("del:R", &delta->deletes);
    const DeltaPair* pair = plan->Find("W", "R");
    Result<Relation> plus = EvalExpr(*pair->plus, env);
    Result<Relation> minus = EvalExpr(*pair->minus, env);
    DWC_ASSERT_OK(plus);
    DWC_ASSERT_OK(minus);
    for (const Tuple& tuple : minus->tuples()) {
      w.Erase(tuple);
    }
    for (const Tuple& tuple : plus->tuples()) {
      w.Insert(tuple);
    }
    // Ground truth from the live source.
    Environment source_env = Environment::FromDatabase(source.db());
    Result<Relation> expected =
        EvalExpr(*context.views[0].expr, source_env);
    DWC_ASSERT_OK(expected);
    ASSERT_TRUE(testing::RelationsEqual(w, *expected));
  }
  // The plan never consulted the source.
  EXPECT_EQ(source.query_count(), 0u);
}

TEST(SelectionSelfMaintTest, NotQueryIndependent) {
  // W = sigma_{B>=20}(R) cannot answer Q = R: the inverse does not exist.
  // (Formally: two source states differing only in a tuple with B < 20 map
  // to the same warehouse state.)
  ScriptContext a = MustRun(kScript);
  ScriptContext b = MustRun(std::string(kScript) +
                            "INSERT INTO R VALUES (9, 1);");
  Result<Relation> wa = a.Evaluate(a.views[0].expr);
  Result<Relation> wb = b.Evaluate(b.views[0].expr);
  DWC_ASSERT_OK(wa);
  DWC_ASSERT_OK(wb);
  // Different database states, identical warehouse states: no inverse.
  EXPECT_FALSE(a.db.SameStateAs(b.db));
  EXPECT_TRUE(wa->SameContentAs(*wb));
}

TEST(SelectionSelfMaintTest, RejectsNonSelectionViews) {
  ScriptContext context = MustRun(R"(
CREATE TABLE R(A INT, B INT);
VIEW W AS PROJECT[A](R);
)");
  Result<MaintenancePlan> plan =
      DeriveSelectionOnlyPlan(context.views, *context.catalog);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dwc
