// Delta-rule correctness: for random expressions E and random updates u,
// the derived Δ+ / Δ- must satisfy  E(new) = (E(old) \ Δ-) ∪ Δ+  and
// Δ+ ∩ E(old) = ∅, Δ- ⊆ E(old) (exactness).

#include "maintenance/delta.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "warehouse/source.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

TEST(DeltaDeriverTest, UntouchedExpressionHasEmptyDeltas) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  SchemaResolver resolver = ResolverFromCatalog(*catalog);
  DeltaDeriver deriver({"S"}, resolver);
  Result<DeltaPair> delta = deriver.Derive(Expr::Base("R"));
  DWC_ASSERT_OK(delta);
  EXPECT_EQ(delta->plus->kind(), Expr::Kind::kEmpty);
  EXPECT_EQ(delta->minus->kind(), Expr::Kind::kEmpty);
}

TEST(DeltaDeriverTest, BaseDeltasAreTheNotifiedSets) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  SchemaResolver resolver = ResolverFromCatalog(*catalog);
  DeltaDeriver deriver({"R"}, resolver);
  Result<DeltaPair> delta = deriver.Derive(Expr::Base("R"));
  DWC_ASSERT_OK(delta);
  EXPECT_EQ(delta->plus->ToString(), "ins:R");
  EXPECT_EQ(delta->minus->ToString(), "del:R");
}

TEST(DeltaDeriverTest, NewStateRewritesOnlyUpdatedBases) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  SchemaResolver resolver = ResolverFromCatalog(*catalog);
  DeltaDeriver deriver({"R"}, resolver);
  ExprRef expr = Expr::Join(Expr::Base("R"), Expr::Base("S"));
  EXPECT_EQ(deriver.NewState(expr)->ToString(),
            "(((R union ins:R) minus del:R) join S)");
}

// Random-expression exactness sweep, parameterized by seed.
class DeltaExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaExactnessTest, DeltasAreExactOnRandomInstances) {
  Rng rng(GetParam());
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  SchemaResolver resolver = ResolverFromCatalog(*catalog);
  std::vector<std::string> relations = catalog->RelationNames();

  for (int round = 0; round < 10; ++round) {
    RandomQueryOptions qopts;
    qopts.max_depth = 3;
    Result<ExprRef> expr = GenerateRandomQuery(*catalog, &rng, qopts);
    DWC_ASSERT_OK(expr);
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    const std::string& updated = relations[rng.Below(relations.size())];

    Result<UpdateOp> op = GenerateRandomUpdate(*db, updated, &rng);
    DWC_ASSERT_OK(op);
    // Canonicalize against the current state.
    Source source(*db);
    Result<CanonicalDelta> delta = source.Apply(*op);
    DWC_ASSERT_OK(delta);

    DeltaDeriver deriver({updated}, resolver);
    Result<DeltaPair> pair = deriver.Derive(*expr);
    DWC_ASSERT_OK(pair);

    // Evaluate old E, deltas, and new E.
    Environment old_env = Environment::FromDatabase(*db);
    old_env.Bind(DeltaInsName(updated), &delta->inserts);
    old_env.Bind(DeltaDelName(updated), &delta->deletes);
    Result<Relation> old_e = EvalExpr(**expr, old_env);
    Result<Relation> plus = EvalExpr(*pair->plus, old_env);
    Result<Relation> minus = EvalExpr(*pair->minus, old_env);
    DWC_ASSERT_OK(old_e);
    DWC_ASSERT_OK(plus);
    DWC_ASSERT_OK(minus);

    Environment new_env = Environment::FromDatabase(source.db());
    Result<Relation> new_e = EvalExpr(**expr, new_env);
    DWC_ASSERT_OK(new_e);

    // Exactness: Δ+ disjoint from old, Δ- inside old.
    Result<Relation> plus_aligned = plus->AlignTo(old_e->schema());
    Result<Relation> minus_aligned = minus->AlignTo(old_e->schema());
    DWC_ASSERT_OK(plus_aligned);
    DWC_ASSERT_OK(minus_aligned);
    for (const Tuple& tuple : plus_aligned->tuples()) {
      ASSERT_FALSE(old_e->Contains(tuple))
          << "Δ+ not disjoint for " << (*expr)->ToString();
    }
    for (const Tuple& tuple : minus_aligned->tuples()) {
      ASSERT_TRUE(old_e->Contains(tuple))
          << "Δ- outside old for " << (*expr)->ToString();
    }
    // Application law: new = (old \ Δ-) ∪ Δ+.
    Relation applied = *old_e;
    for (const Tuple& tuple : minus_aligned->tuples()) {
      applied.Erase(tuple);
    }
    for (const Tuple& tuple : plus_aligned->tuples()) {
      applied.Insert(tuple);
    }
    ASSERT_TRUE(testing::RelationsEqual(applied, *new_e))
        << "expr " << (*expr)->ToString() << "\nupdate on " << updated;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaExactnessTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace dwc
