// SARIF 2.1.0 output: structural checks on the log the tools emit for
// GitHub code-scanning upload.

#include "lint/sarif.h"

#include <gtest/gtest.h>

#include "lint/linter.h"

namespace dwc {
namespace {

TEST(SarifTest, EmitsSchemaVersionAndDriver) {
  std::string log = FormatDiagnosticsSarif({}, "spec.dwc", "dwc_lint");
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos) << log;
  EXPECT_NE(log.find("sarif-2.1.0.json"), std::string::npos) << log;
  EXPECT_NE(log.find("\"name\": \"dwc_lint\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"results\": []"), std::string::npos) << log;
}

TEST(SarifTest, ResultCarriesRuleLevelMessageAndLocation) {
  LintReport report = LintScript(
      "CREATE TABLE R(a INT);\n"
      "VIEW V AS R JOIN Missing;\n");
  std::string log =
      FormatDiagnosticsSarif(report.diagnostics, "spec.dwc", "dwc_lint");
  EXPECT_NE(log.find("\"ruleId\": \"DWC-E002\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"level\": \"error\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"uri\": \"spec.dwc\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"startLine\": 2"), std::string::npos) << log;
  // W004 (keyless base) rides along as a warning.
  EXPECT_NE(log.find("\"level\": \"warning\""), std::string::npos) << log;
}

TEST(SarifTest, RuleCatalogListsOnlyRulesThatFired) {
  LintReport report = LintScript(
      "CREATE TABLE R(a INT, KEY(a));\n"
      "VIEW V AS R JOIN Missing;\n");
  std::string log =
      FormatDiagnosticsSarif(report.diagnostics, "spec.dwc", "dwc_lint");
  EXPECT_NE(log.find("\"id\": \"DWC-E002\""), std::string::npos) << log;
  // A rule that did not fire must not bloat the catalog.
  EXPECT_EQ(log.find("\"id\": \"DWC-E006\""), std::string::npos) << log;
  // Fired rules carry their paper reference as help text.
  EXPECT_NE(log.find("\"help\""), std::string::npos) << log;
}

TEST(SarifTest, MultiFileLogKeepsPerFileUris) {
  LintReport first = LintScript("VIEW V AS Nope;");
  LintReport second = LintScript(
      "CREATE TABLE R(a INT);\n"
      "VIEW W AS R;\n");
  std::string log = FormatSarif(
      {
          {"a.dwc", first.diagnostics},
          {"b.dwc", second.diagnostics},
      },
      "dwc_lint");
  EXPECT_NE(log.find("\"uri\": \"a.dwc\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"uri\": \"b.dwc\""), std::string::npos) << log;
  // One run, one driver: the header appears exactly once.
  size_t count = 0;
  for (size_t pos = log.find("\"driver\""); pos != std::string::npos;
       pos = log.find("\"driver\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SarifTest, EscapesQuotesAndNewlines) {
  Diagnostic diagnostic;
  diagnostic.rule = "DWC-E001";
  diagnostic.severity = LintSeverity::kError;
  diagnostic.message = "bad \"thing\"\nsecond line";
  std::string log =
      FormatDiagnosticsSarif({diagnostic}, "a\"b.dwc", "dwc_lint");
  EXPECT_NE(log.find("bad \\\"thing\\\"\\nsecond line"), std::string::npos)
      << log;
  EXPECT_NE(log.find("a\\\"b.dwc"), std::string::npos) << log;
}

TEST(SarifTest, SemanticRulesRoundTrip) {
  LintReport report = LintScript(
      "CREATE TABLE Sale(item INT, clerk STRING, price INT, KEY(item));\n"
      "VIEW CheapSales AS SELECT[price < 100](Sale);\n"
      "VIEW C_Sale AS PROJECT[item, clerk](SELECT[price >= 100](Sale));\n");
  std::string log =
      FormatDiagnosticsSarif(report.diagnostics, "spec.dwc", "dwc_analyze");
  EXPECT_NE(log.find("\"ruleId\": \"DWC-S002\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"name\": \"dwc_analyze\""), std::string::npos) << log;
  EXPECT_NE(log.find("missing-attribute witness"), std::string::npos) << log;
}

}  // namespace
}  // namespace dwc
