#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/diagnostic.h"
#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

const Diagnostic* FindRule(const LintReport& report, std::string_view rule) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) {
      return &d;
    }
  }
  return nullptr;
}

std::string Rules(const LintReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.rule;
    out += ' ';
  }
  return out;
}

// One malformed (or merely suspicious) script and the diagnostic it must
// produce. `line`/`column` of 0 mean "don't check that coordinate".
struct LintCase {
  const char* name;
  const char* script;
  const char* rule;
  LintSeverity severity;
  size_t line;
  size_t column;
};

class LintTableTest : public ::testing::TestWithParam<LintCase> {};

TEST_P(LintTableTest, ReportsRuleWithLocation) {
  const LintCase& c = GetParam();
  LintReport report = LintScript(c.script);
  const Diagnostic* diag = FindRule(report, c.rule);
  ASSERT_NE(diag, nullptr)
      << c.name << ": expected " << c.rule << ", got: " << Rules(report);
  EXPECT_EQ(diag->severity, c.severity) << c.name;
  if (c.line > 0) {
    EXPECT_EQ(diag->loc.line, c.line) << c.name;
  }
  if (c.column > 0) {
    EXPECT_EQ(diag->loc.column, c.column) << c.name;
  }
}

const LintCase kLintCases[] = {
    {"parse_error", "CREATE TABLE R(a INT;", "DWC-E001", LintSeverity::kError,
     1, 0},
    {"unknown_relation",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS R JOIN Missing;",
     "DWC-E002", LintSeverity::kError, 2, 18},
    {"insert_into_unknown_relation", "INSERT INTO Nope VALUES (1);",
     "DWC-E002", LintSeverity::kError, 1, 1},
    {"unknown_projection_attribute",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS PROJECT[z](R);",
     "DWC-E003", LintSeverity::kError, 2, 19},
    {"unknown_predicate_attribute",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS SELECT[z = 1](R);",
     "DWC-E003", LintSeverity::kError, 2, 18},
    {"unknown_key_attribute", "CREATE TABLE R(a INT, KEY(b));", "DWC-E003",
     LintSeverity::kError, 1, 1},
    {"union_is_not_psj",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE S(a INT, KEY(a));\n"
     "VIEW V AS R UNION S;",
     "DWC-E004", LintSeverity::kError, 3, 13},
    {"difference_is_not_psj",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE S(a INT, KEY(a));\n"
     "VIEW V AS R MINUS S;",
     "DWC-E004", LintSeverity::kError, 3, 13},
    {"self_join",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS R JOIN R;",
     "DWC-E005", LintSeverity::kError, 2, 18},
    {"cyclic_inds",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE S(a INT, KEY(a));\n"
     "INCLUSION R(a) SUBSETOF S(a);\n"
     "INCLUSION S(a) SUBSETOF R(a);\n"
     "VIEW V AS R JOIN S;",
     "DWC-E006", LintSeverity::kError, 3, 1},
    {"self_referential_ind",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "INCLUSION R(b) SUBSETOF R(b);\n"
     "VIEW V AS R;",
     "DWC-E006", LintSeverity::kError, 2, 1},
    {"ind_arity_mismatch",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "CREATE TABLE S(a INT, KEY(a));\n"
     "INCLUSION R(a, b) SUBSETOF S(a);",
     "DWC-E007", LintSeverity::kError, 3, 1},
    {"ind_type_mismatch",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE S(a STRING, KEY(a));\n"
     "INCLUSION R(a) SUBSETOF S(a);",
     "DWC-E007", LintSeverity::kError, 3, 1},
    {"duplicate_table",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE R(a INT, KEY(a));",
     "DWC-E008", LintSeverity::kError, 2, 1},
    {"duplicate_view",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS R;\n"
     "VIEW V AS R;",
     "DWC-E008", LintSeverity::kError, 3, 1},
    {"unsatisfiable_selection",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS SELECT[a > 5 AND a < 3](R);",
     "DWC-W001", LintSeverity::kWarning, 2, 18},
    {"tautological_selection",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS SELECT[a = 1 OR a <> 1](R);",
     "DWC-W002", LintSeverity::kWarning, 2, 18},
    {"key_projected_away",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "VIEW V AS PROJECT[b](R);",
     "DWC-W003", LintSeverity::kWarning, 1, 1},
    {"keyless_base",
     "CREATE TABLE R(a INT);\n"
     "VIEW V AS R;",
     "DWC-W004", LintSeverity::kWarning, 1, 1},
    {"subsumed_view",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "VIEW Big AS R;\n"
     "VIEW Small AS PROJECT[a](SELECT[b > 5](R));",
     "DWC-W005", LintSeverity::kWarning, 3, 1},
    {"noop_projection",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "VIEW V AS PROJECT[a, b](R);",
     "DWC-W006", LintSeverity::kWarning, 2, 19},
    {"stacked_projections",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "VIEW V AS PROJECT[a](PROJECT[a, b](R));",
     "DWC-W006", LintSeverity::kWarning, 2, 30},
    {"multiline_projection_anchors_at_attr_list",
     // The diagnostic must point at the projection list on line 3, not at
     // the VIEW keyword on line 2 (regression: clause-level SourceMap
     // anchors for multi-line view definitions).
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "VIEW V AS\n"
     "  PROJECT[z](\n"
     "    R);",
     "DWC-E003", LintSeverity::kError, 3, 11},
    {"multiline_predicate_anchors_at_predicate",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS\n"
     "  SELECT[a > 5 AND\n"
     "         a < 3](R);",
     "DWC-W001", LintSeverity::kWarning, 3, 10},
    {"view_over_view",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "VIEW V AS R;\n"
     "VIEW W AS SELECT[a > 0](V);",
     "DWC-W007", LintSeverity::kWarning, 3, 25},
    {"renaming_ind",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE S(b INT, KEY(b));\n"
     "INCLUSION R(a) SUBSETOF S(b);\n"
     "VIEW V AS R JOIN S;",
     "DWC-N001", LintSeverity::kNote, 3, 1},
    {"unreferenced_relation",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE Unused(x INT, KEY(x));\n"
     "VIEW V AS R;",
     "DWC-N002", LintSeverity::kNote, 2, 1},
    {"canonical_duplicate_commuted_join",
     "CREATE TABLE R(a INT, KEY(a));\n"
     "CREATE TABLE S(a INT, b INT, KEY(a));\n"
     "VIEW V AS R JOIN S;\n"
     "VIEW W AS S JOIN R;",
     "DWC-N003", LintSeverity::kNote, 4, 1},
    {"canonical_subexpression_of_other_view",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "CREATE TABLE S(a INT, c INT, KEY(a));\n"
     "VIEW Small AS SELECT[b > 0](R);\n"
     "VIEW Big AS SELECT[b > 0](R) JOIN S;",
     "DWC-N004", LintSeverity::kNote, 3, 1},
    // Semantic pass (DWC-S*): verdicts from the src/analysis/ engines.
    {"lossy_claimed_complement",
     // C_Sale projects `price` away, so W = {CheapSales, C_Sale} cannot
     // reconstruct Sale: S002 with the missing-attribute witness.
     "CREATE TABLE Sale(item INT, clerk STRING, price INT, KEY(item));\n"
     "VIEW CheapSales AS SELECT[price < 100](Sale);\n"
     "VIEW C_Sale AS PROJECT[item, clerk](SELECT[price >= 100](Sale));",
     "DWC-S002", LintSeverity::kWarning, 3, 1},
    {"unverified_claimed_complement",
     // Full width, but the subtracted part is not the Equation (3)
     // construction: the residual store is unverified.
     "CREATE TABLE Sale(item INT, clerk STRING, price INT, KEY(item));\n"
     "VIEW CheapSales AS SELECT[price < 100](Sale);\n"
     "VIEW C_Sale AS SELECT[price >= 50](Sale);",
     "DWC-S003", LintSeverity::kWarning, 3, 1},
    {"attributes_recoverable_only_through_complement",
     "CREATE TABLE R(a INT, b INT, KEY(a));\n"
     "VIEW V AS PROJECT[a](R);",
     "DWC-S004", LintSeverity::kNote, 2, 19},
    {"over_complement_for_selection_views",
     // A sigma-view is self-maintainable (Section 4 closing remark): its
     // complement is never read by any maintenance expression.
     "CREATE TABLE Emp(id INT, dept STRING, KEY(id));\n"
     "VIEW HighPaid AS SELECT[id >= 10](Emp);",
     "DWC-S006", LintSeverity::kNote, 1, 1},
};

INSTANTIATE_TEST_SUITE_P(Cases, LintTableTest, ::testing::ValuesIn(kLintCases),
                         [](const ::testing::TestParamInfo<LintCase>& info) {
                           return std::string(info.param.name);
                         });

TEST(LintTest, CleanSpecHasNoFindings) {
  LintReport report = LintScript(
      "CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));\n"
      "CREATE TABLE Sale(item STRING, clerk STRING, KEY(item, clerk));\n"
      "INCLUSION Sale(clerk) SUBSETOF Emp(clerk);\n"
      "VIEW Sold AS Sale JOIN Emp;\n");
  EXPECT_TRUE(report.diagnostics.empty()) << Rules(report);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.warnings, 0u);
  EXPECT_EQ(report.notes, 0u);
}

TEST(LintTest, CollectsAllFindingsInsteadOfAbortingOnFirst) {
  // One script, many independent problems: the analyzer must surface every
  // one of them, unlike the fail-fast AnalyzeAllPsj path.
  LintReport report = LintScript(
      "CREATE TABLE R(a INT, b INT, KEY(a));\n"
      "VIEW V1 AS R JOIN Missing;\n"
      "VIEW V2 AS R UNION R;\n"
      "VIEW V3 AS SELECT[a = 1 AND a = 2](R);\n"
      "VIEW V4 AS PROJECT[z](R);\n");
  for (const char* rule : {"DWC-E002", "DWC-E004", "DWC-W001", "DWC-E003"}) {
    EXPECT_NE(FindRule(report, rule), nullptr)
        << rule << " missing from: " << Rules(report);
  }
  EXPECT_GE(report.errors, 3u);
}

TEST(LintTest, DiagnosticsAreSortedBySourcePosition) {
  LintReport report = LintScript(
      "CREATE TABLE R(a INT);\n"
      "VIEW V1 AS R JOIN Missing;\n"
      "VIEW V2 AS R UNION R;\n");
  ASSERT_GE(report.diagnostics.size(), 2u);
  EXPECT_TRUE(std::is_sorted(report.diagnostics.begin(),
                             report.diagnostics.end()));
}

TEST(LintTest, ExampleScriptsAreErrorFree) {
  std::filesystem::path dir(DWC_EXAMPLE_SCRIPTS_DIR);
  size_t scripts = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dwc") {
      continue;
    }
    ++scripts;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LintReport report = LintScript(buffer.str());
    EXPECT_EQ(report.errors, 0u)
        << entry.path() << ": "
        << FormatDiagnosticsText(report.diagnostics,
                                 entry.path().filename().string());
  }
  EXPECT_GE(scripts, 4u) << "example corpus went missing in " << dir;
}

TEST(LintTest, LintWarehouseViewsWithoutSourcePositions) {
  ScriptContext context = MustRun("CREATE TABLE R(a INT, KEY(a));");
  std::vector<ViewDef> views = {
      {"V", Expr::Union(Expr::Base("R"), Expr::Base("R"))}};
  LintReport report = LintWarehouseViews(context.catalog, views);
  const Diagnostic* diag = FindRule(report, "DWC-E004");
  ASSERT_NE(diag, nullptr) << Rules(report);
  EXPECT_FALSE(diag->loc.valid());
}

TEST(LintTest, SpecifyWarehouseCheckedRejectsBadSpecWithRuleIds) {
  ScriptContext context = MustRun("CREATE TABLE R(a INT, KEY(a));");
  std::vector<ViewDef> views = {{"V", Expr::Base("Missing")}};
  LintReport report;
  Result<WarehouseSpec> spec =
      SpecifyWarehouseChecked(context.catalog, views, ComplementOptions(),
                              &report);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("DWC-E002"), std::string::npos)
      << spec.status().message();
  EXPECT_TRUE(report.has_errors());
}

TEST(LintTest, SpecifyWarehouseCheckedAcceptsGoodSpec) {
  ScriptContext context = MustRun(
      "CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));\n"
      "CREATE TABLE Sale(item STRING, clerk STRING);\n"
      "INCLUSION Sale(clerk) SUBSETOF Emp(clerk);\n");
  std::vector<ViewDef> views = {
      {"Sold", Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"))}};
  LintReport report;
  Result<WarehouseSpec> spec =
      SpecifyWarehouseChecked(context.catalog, views, ComplementOptions(),
                              &report);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  // Sale has no key: the analyzer warns (W004) but does not reject.
  EXPECT_FALSE(report.has_errors());
  EXPECT_NE(FindRule(report, "DWC-W004"), nullptr) << Rules(report);
}

TEST(LintTest, JsonOutputContainsRulesAndCounts) {
  LintReport report = LintScript(
      "CREATE TABLE R(a INT);\n"
      "VIEW V AS R JOIN Missing;\n");
  std::string json = FormatDiagnosticsJson(report.diagnostics, "spec.dwc");
  EXPECT_NE(json.find("\"file\": \"spec.dwc\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"DWC-E002\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": "), std::string::npos) << json;
}

TEST(LintTest, JsonEscapesQuotesInMessages) {
  LintReport report = LintScript("VIEW V AS Nope;");
  std::string json = FormatDiagnosticsJson(report.diagnostics, "a\"b.dwc");
  EXPECT_NE(json.find("a\\\"b.dwc"), std::string::npos) << json;
}

TEST(LintTest, RuleCatalogIsGroupedAndQueryable) {
  const std::vector<LintRule>& rules = LintRules();
  ASSERT_GE(rules.size(), 6u);
  // Grouped by severity, numbered within each group; IDs are unique and
  // every entry is findable by its own ID.
  EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end(),
                             [](const LintRule& a, const LintRule& b) {
                               return a.severity < b.severity;
                             }));
  std::set<std::string_view> ids;
  for (const LintRule& r : rules) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule ID " << r.id;
    EXPECT_EQ(FindLintRule(r.id), &r);
  }
  const LintRule* rule = FindLintRule("DWC-E006");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->severity, LintSeverity::kError);
  EXPECT_NE(std::string_view(rule->paper_ref).find("Theorem 2.2"),
            std::string_view::npos);
  EXPECT_EQ(FindLintRule("DWC-X999"), nullptr);
}

TEST(LintTest, ParseErrorLocationRecovered) {
  LintReport report = LintScript("CREATE TABLE R(a INT, KEY(a));\nVIEW ;");
  const Diagnostic* diag = FindRule(report, "DWC-E001");
  ASSERT_NE(diag, nullptr) << Rules(report);
  EXPECT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(diag->loc.line, 2u);
}

}  // namespace
}  // namespace dwc
