#include "lint/predicate_analysis.h"

#include <string>

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace dwc {
namespace {

PredicateRef MustParsePred(const std::string& text) {
  Result<PredicateRef> pred = ParsePredicate(text);
  EXPECT_TRUE(pred.ok()) << text << ": " << pred.status().message();
  return *pred;
}

struct PredicateCase {
  const char* text;
  bool unsat;
  bool taut;
};

TEST(PredicateAnalysisTest, Table) {
  const PredicateCase kCases[] = {
      // Satisfiable, not tautological.
      {"a = 5", false, false},
      {"a > 1 AND a < 10", false, false},
      {"a = 1 OR b = 2", false, false},
      {"a = b", false, false},
      {"NOT a = 5", false, false},
      // Provably unsatisfiable.
      {"a > 5 AND a < 3", true, false},
      {"a = 1 AND a = 2", true, false},
      {"a = 1 AND a <> 1", true, false},
      {"a < b AND a > b", true, false},
      {"a = b AND a <> b", true, false},
      {"a > 5 AND NOT a > 5", true, false},
      {"(a > 5 AND a < 3) OR (a = 1 AND a = 2)", true, false},
      {"1 = 2", true, false},
      // Provably tautological.
      {"a >= 0 OR a < 0", false, true},
      {"a = 5 OR a <> 5", false, true},
      {"a <= b OR a > b", false, true},
      {"NOT (a > 5 AND a < 3)", false, true},
      {"1 = 1", false, true},
      // Contradiction under the equality-only fragment but not provable by
      // pairwise interval reasoning: stays "satisfiable" (sound, incomplete).
      {"a < b AND b < c AND c < a", false, false},
  };
  for (const PredicateCase& c : kCases) {
    PredicateRef pred = MustParsePred(c.text);
    EXPECT_EQ(ProvablyUnsatisfiable(pred), c.unsat) << c.text;
    EXPECT_EQ(ProvablyTautological(pred), c.taut) << c.text;
  }
}

TEST(PredicateAnalysisTest, TrueIsTautology) {
  EXPECT_TRUE(ProvablyTautological(Predicate::True()));
  EXPECT_FALSE(ProvablyUnsatisfiable(Predicate::True()));
}

TEST(PredicateAnalysisTest, WideDisjunctionStaysWithinBudget) {
  // 2^40 DNF disjuncts if fully expanded; the analyzer must give up (and
  // report "satisfiable") rather than blow up.
  PredicateRef pred = MustParsePred("a = 0 OR a = 1");
  PredicateRef wide = pred;
  for (int i = 0; i < 40; ++i) wide = Predicate::And(wide, pred);
  EXPECT_FALSE(ProvablyUnsatisfiable(wide));
}

TEST(PredicateAnalysisTest, MixedTypeComparisonsDoNotAssumeOrder) {
  // 'x' vs 5 compares under the engine's total type-first order; interval
  // reasoning stays valid, so a < 5 AND a > 'x' is simply not refutable
  // unless the constants themselves contradict.
  PredicateRef pred = MustParsePred("a < 5 AND a > 'x'");
  EXPECT_FALSE(ProvablyTautological(pred));
}

}  // namespace
}  // namespace dwc
