// Source atomicity and the delta delivery envelope: a failing op (or a
// failing op inside a transaction) must leave the source byte-identical to
// its pre-call state, and every reported delta must carry a consistent
// source id / epoch / sequence / state digest / payload checksum.

#include "warehouse/source.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "util/checksum.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class SourceAtomicityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/false));
    source_ = std::make_unique<Source>(context_.db, "s1");
  }

  ScriptContext context_;
  std::unique_ptr<Source> source_;
};

TEST_F(SourceAtomicityTest, ApplyWithOneBadTupleMutatesNothing) {
  // Regression: Apply used to mutate tuple-by-tuple, so an op mixing good
  // and bad tuples left the good prefix applied. All tuples must be
  // validated before the first mutation.
  Database before = source_->db();
  uint64_t digest_before = source_->digest().Combined();
  uint64_t seq_before = source_->last_sequence();
  UpdateOp mixed{"Emp",
                 {T({S("Nina"), I(27)}), T({S("bad-arity")})},
                 {T({S("Paula"), I(32)})}};
  Result<CanonicalDelta> delta = source_->Apply(mixed);
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(source_->db().SameStateAs(before));
  EXPECT_EQ(source_->digest().Combined(), digest_before);
  // A failed op must not consume a sequence number either (the integrator
  // would see a permanent gap).
  EXPECT_EQ(source_->last_sequence(), seq_before);
}

TEST_F(SourceAtomicityTest, ApplyUnknownRelationMutatesNothing) {
  Database before = source_->db();
  UpdateOp op{"Nope", {T({I(1)})}, {}};
  EXPECT_EQ(source_->Apply(op).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(source_->db().SameStateAs(before));
}

TEST_F(SourceAtomicityTest, FailedTransactionRestoresPreTransactionState) {
  // Regression: ApplyTransaction used to abort mid-stream, leaving the
  // already-applied prefix in place. The prefix must be rolled back.
  Database before = source_->db();
  uint64_t digest_before = source_->digest().Combined();
  uint64_t seq_before = source_->last_sequence();
  std::vector<UpdateOp> ops = {
      {"Emp", {T({S("Nina"), I(27)})}, {}},
      {"Sale", {T({S("radio"), S("Nina")})}, {T({S("PC"), S("John")})}},
      {"Emp", {T({S("bad-arity")})}, {}},  // Fails here.
  };
  Result<std::vector<CanonicalDelta>> deltas = source_->ApplyTransaction(ops);
  EXPECT_EQ(deltas.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(source_->db().SameStateAs(before));
  EXPECT_EQ(source_->digest().Combined(), digest_before);
  EXPECT_EQ(source_->last_sequence(), seq_before);
}

TEST_F(SourceAtomicityTest, TransactionUnknownRelationMidStreamRollsBack) {
  Database before = source_->db();
  std::vector<UpdateOp> ops = {
      {"Emp", {T({S("Nina"), I(27)})}, {}},
      {"Nope", {T({I(1)})}, {}},
  };
  EXPECT_EQ(source_->ApplyTransaction(ops).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(source_->db().SameStateAs(before));
}

TEST_F(SourceAtomicityTest, EnvelopeIsStampedAndMonotoneAcrossRelations) {
  Result<CanonicalDelta> d1 =
      source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(d1);
  Result<CanonicalDelta> d2 =
      source_->Apply({"Sale", {T({S("radio"), S("Nina")})}, {}});
  DWC_ASSERT_OK(d2);
  EXPECT_EQ(d1->source_id, "s1");
  EXPECT_EQ(d1->epoch, 1u);
  // One shared counter across the source's relations: gaps are detectable
  // without knowing which relation the lost delta touched.
  EXPECT_EQ(d2->sequence, d1->sequence + 1);
  EXPECT_TRUE(DeltaPayloadIntact(*d1));
  EXPECT_TRUE(DeltaPayloadIntact(*d2));
  // The piggybacked digest is the post-apply relation state.
  EXPECT_EQ(d1->state_digest,
            RelationDigest(*source_->db().FindRelation("Emp")));
  EXPECT_EQ(d2->state_digest,
            RelationDigest(*source_->db().FindRelation("Sale")));
  EXPECT_EQ(source_->last_sequence_for("Emp"), d1->sequence);
  EXPECT_EQ(source_->last_sequence_for("Sale"), d2->sequence);
}

TEST_F(SourceAtomicityTest, NoOpUpdatesConsumeNoSequenceNumbers) {
  uint64_t seq_before = source_->last_sequence();
  // Deleting an absent tuple and re-inserting a present one are both no-ops
  // after canonicalization.
  Result<CanonicalDelta> noop =
      source_->Apply({"Emp", {T({S("Mary"), I(23)})}, {T({S("Ghost"), I(1)})}});
  DWC_ASSERT_OK(noop);
  EXPECT_TRUE(noop->empty());
  EXPECT_FALSE(noop->sequenced());
  EXPECT_EQ(source_->last_sequence(), seq_before);
}

TEST_F(SourceAtomicityTest, TransactionStampsNetDeltasWithFinalDigests) {
  std::vector<UpdateOp> ops = {
      {"Emp", {T({S("Nina"), I(27)})}, {}},
      {"Emp", {T({S("Omar"), I(31)})}, {T({S("Nina"), I(27)})}},
      {"Sale", {T({S("radio"), S("Omar")})}, {}},
  };
  Result<std::vector<CanonicalDelta>> deltas = source_->ApplyTransaction(ops);
  DWC_ASSERT_OK(deltas);
  ASSERT_EQ(deltas->size(), 2u);  // Net deltas, one per touched relation.
  for (const CanonicalDelta& delta : *deltas) {
    EXPECT_TRUE(DeltaPayloadIntact(delta));
    // Digests describe the post-transaction state, not intermediates.
    EXPECT_EQ(delta.state_digest,
              RelationDigest(*source_->db().FindRelation(delta.relation)));
    // Insert-then-delete inside the transaction cancelled.
    EXPECT_FALSE(delta.inserts.Contains(T({S("Nina"), I(27)})));
  }
  // Exactly one sequence number per net delta.
  EXPECT_EQ(source_->last_sequence(), 2u);
}

TEST_F(SourceAtomicityTest, BeginEpochRewindsSequencesAndWatermarks) {
  DWC_ASSERT_OK(source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}}));
  EXPECT_EQ(source_->epoch(), 1u);
  EXPECT_EQ(source_->last_sequence(), 1u);
  source_->BeginEpoch();
  EXPECT_EQ(source_->epoch(), 2u);
  EXPECT_EQ(source_->last_sequence(), 0u);
  EXPECT_EQ(source_->last_sequence_for("Emp"), 0u);
  Result<CanonicalDelta> next =
      source_->Apply({"Emp", {T({S("Omar"), I(31)})}, {}});
  DWC_ASSERT_OK(next);
  EXPECT_EQ(next->epoch, 2u);
  EXPECT_EQ(next->sequence, 1u);
}

TEST_F(SourceAtomicityTest, QueryCountTracksAdHocQueries) {
  EXPECT_EQ(source_->query_count(), 0u);
  DWC_ASSERT_OK(source_->AnswerQuery(Expr::Base("Emp")));
  DWC_ASSERT_OK(source_->AnswerQuery(Expr::Base("Sale")));
  EXPECT_EQ(source_->query_count(), 2u);
  source_->ResetQueryCount();
  EXPECT_EQ(source_->query_count(), 0u);
}

}  // namespace
}  // namespace dwc
