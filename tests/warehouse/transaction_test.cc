// Atomic multi-relation transactions: Theorem 4.1's update u is any state
// transition; IntegrateTransaction derives simultaneous-update maintenance
// expressions and must agree with ground truth and with recompute.

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MakeCatalog;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

TEST(TransactionTest, CrossRelationTransactionIntegratesAtomically) {
  ScriptContext context = MustRun(Figure1Script(/*with_constraints=*/false));
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views, options));
  Source source(context.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);

  // Hire Zoe and record her first sale in one transaction. Applying only
  // the Sale op first would violate the join dependency the warehouse
  // relies on conceptually; as a transaction it is consistent.
  std::vector<UpdateOp> ops = {
      {"Emp", {T({S("Zoe"), I(31)})}, {}},
      {"Sale", {T({S("Laptop"), S("Zoe")})}, {}},
      {"Sale", {}, {T({S("VCR"), S("Mary")})}},
  };
  Result<std::vector<CanonicalDelta>> deltas = source.ApplyTransaction(ops);
  DWC_ASSERT_OK(deltas);
  ASSERT_EQ(deltas->size(), 2u);  // Merged per relation.
  DWC_ASSERT_OK(warehouse->IntegrateTransaction(*deltas));
  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
  EXPECT_EQ(source.query_count(), 0u);

  const Relation* sold = warehouse->FindRelation("Sold");
  EXPECT_TRUE(sold->Contains(T({S("Laptop"), S("Zoe"), I(31)})));
  EXPECT_FALSE(sold->Contains(T({S("VCR"), S("Mary"), I(23)})));
}

TEST(TransactionTest, DeleteThenReinsertCancels) {
  ScriptContext context = MustRun(Figure1Script(false));
  Source source(context.db);
  std::vector<UpdateOp> ops = {
      {"Sale", {}, {T({S("VCR"), S("Mary")})}},
      {"Sale", {T({S("VCR"), S("Mary")})}, {}},
  };
  Result<std::vector<CanonicalDelta>> deltas = source.ApplyTransaction(ops);
  DWC_ASSERT_OK(deltas);
  EXPECT_TRUE(deltas->empty());

  // Insert-then-delete of a fresh tuple cancels too.
  std::vector<UpdateOp> ops2 = {
      {"Sale", {T({S("Monitor"), S("John")})}, {}},
      {"Sale", {}, {T({S("Monitor"), S("John")})}},
  };
  deltas = source.ApplyTransaction(ops2);
  DWC_ASSERT_OK(deltas);
  EXPECT_TRUE(deltas->empty());
}

TEST(TransactionTest, DuplicateRelationDeltasRejected) {
  ScriptContext context = MustRun(Figure1Script(false));
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views, options));
  Result<Warehouse> warehouse = Warehouse::Load(spec, context.db);
  DWC_ASSERT_OK(warehouse);
  CanonicalDelta a;
  a.relation = "Sale";
  a.inserts = Relation(*context.catalog->FindSchema("Sale"));
  a.inserts.Insert(T({S("x"), S("Mary")}));
  CanonicalDelta b = a;
  Status status = warehouse->IntegrateTransaction({a, b});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TransactionTest, RandomTransactionsMatchRecompute) {
  Rng rng(616);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  std::vector<std::string> relations = catalog->RelationNames();
  for (int round = 0; round < 4; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    auto spec = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(catalog, *views));
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Source s1(*db), s2(*db);
    Result<Warehouse> incremental =
        Warehouse::Load(spec, s1.db(), MaintenanceStrategy::kIncremental);
    Result<Warehouse> recompute = Warehouse::Load(
        spec, s2.db(), MaintenanceStrategy::kRecomputeFromInverse);
    DWC_ASSERT_OK(incremental);
    DWC_ASSERT_OK(recompute);

    for (int step = 0; step < 8; ++step) {
      // A transaction touching 1-3 relations.
      std::vector<UpdateOp> ops;
      size_t n_ops = 1 + rng.Below(3);
      for (size_t i = 0; i < n_ops; ++i) {
        Result<UpdateOp> op = GenerateRandomUpdate(
            s1.db(), relations[rng.Below(relations.size())], &rng);
        DWC_ASSERT_OK(op);
        ops.push_back(std::move(op).value());
      }
      Result<std::vector<CanonicalDelta>> d1 = s1.ApplyTransaction(ops);
      Result<std::vector<CanonicalDelta>> d2 = s2.ApplyTransaction(ops);
      DWC_ASSERT_OK(d1);
      DWC_ASSERT_OK(d2);
      DWC_ASSERT_OK(incremental->IntegrateTransaction(*d1));
      DWC_ASSERT_OK(recompute->IntegrateTransaction(*d2));
      DWC_ASSERT_OK(CheckConsistency(*incremental, s1.db()));
      ASSERT_TRUE(incremental->state().SameStateAs(recompute->state()))
          << "round " << round << " step " << step;
    }
    EXPECT_EQ(s1.query_count(), 0u);
  }
}

}  // namespace
}  // namespace dwc
