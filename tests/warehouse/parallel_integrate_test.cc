// Parallel warehouse integration: thread count must never be observable in
// the state. Every test drives the same deterministic workload at 1, 2, 4
// and 8 threads (with tiny parallel thresholds so the kernels genuinely
// fan out) and demands digest-identical results, including the
// crash-injection hook's step-for-step abort semantics. Runs under TSan in
// CI (ctest -L dwc_tsan).

#include "warehouse/warehouse.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "warehouse/source.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::T;

constexpr size_t kDim = 200;
constexpr size_t kFact = 2000;
constexpr size_t kBatch = 64;
constexpr size_t kRefreshes = 3;

// Thread counts under test; 1 is the serial oracle.
const size_t kThreadCounts[] = {1, 2, 4, 8};

// Forces the parallel paths regardless of input size.
EvaluatorOptions ForcedParallel(size_t threads) {
  EvaluatorOptions options;
  options.num_threads = threads;
  options.min_parallel_tuples = 1;
  options.morsel_size = 64;
  return options;
}

// A scaled Figure 1: Emp (keyed, kDim clerks), Sale (kFact rows referencing
// the first half of the clerks), Sold = Sale |x| Emp. Without the IND, both
// complements are nonempty.
class ParallelIntegrateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_shared<Catalog>();
    DWC_ASSERT_OK(catalog_->AddRelation(
        "Emp",
        Schema({{"clerk", ValueType::kInt}, {"age", ValueType::kInt}})));
    DWC_ASSERT_OK(catalog_->AddKey("Emp", {"clerk"}));
    DWC_ASSERT_OK(catalog_->AddRelation(
        "Sale",
        Schema({{"item", ValueType::kInt}, {"clerk", ValueType::kInt}})));
    db_ = Database(catalog_);
    DWC_ASSERT_OK(db_.AddEmptyRelation("Emp", *catalog_->FindSchema("Emp")));
    DWC_ASSERT_OK(
        db_.AddEmptyRelation("Sale", *catalog_->FindSchema("Sale")));
    Rng rng(11);
    Relation* emp = db_.FindMutableRelation("Emp");
    for (size_t i = 0; i < kDim; ++i) {
      emp->Insert(T({I(static_cast<int64_t>(i)), I(rng.Range(18, 65))}));
    }
    Relation* sale = db_.FindMutableRelation("Sale");
    size_t inserted = 0;
    while (inserted < kFact) {
      Tuple tuple({I(rng.Range(0, 1 << 20)), I(rng.Range(0, kDim / 2))});
      if (sale->Insert(std::move(tuple))) {
        ++inserted;
      }
    }
    std::vector<ViewDef> views;
    views.push_back(
        ViewDef{"Sold", Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"))});
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog_, views);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
  }

  // A deterministic mixed batch: fresh Sale inserts plus a few deletes.
  UpdateOp MakeBatch(Rng* rng) const {
    UpdateOp op;
    op.relation = "Sale";
    while (op.inserts.size() < kBatch) {
      op.inserts.push_back(
          T({I(rng->Range(1 << 20, 1 << 24)), I(rng->Range(0, kDim - 1))}));
    }
    return op;
  }

  // Runs kRefreshes integrates at `threads` and returns the final combined
  // state digest (asserting consistency along the way).
  uint64_t RunWorkload(size_t threads, MaintenanceStrategy strategy,
                       bool with_aggregate) {
    Source source(db_);
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db(), strategy);
    DWC_EXPECT_OK(warehouse);
    warehouse->SetEvaluatorOptions(ForcedParallel(threads));
    if (with_aggregate) {
      AggregateViewDef def;
      def.name = "SalesPerClerk";
      def.source = Expr::Base("Sold");
      def.group_by = {"clerk"};
      def.aggregates = {
          AggSpec{AggFunc::kCount, "", "n"},
      };
      DWC_EXPECT_OK(warehouse->AddAggregateView(std::move(def)));
    }
    Rng rng(23);
    for (size_t i = 0; i < kRefreshes; ++i) {
      Result<CanonicalDelta> delta = source.Apply(MakeBatch(&rng));
      DWC_EXPECT_OK(delta);
      DWC_EXPECT_OK(warehouse->Integrate(*delta));
    }
    DWC_EXPECT_OK(CheckConsistency(*warehouse, source.db()));
    uint64_t digest = StateDigest(warehouse->state()).Combined();
    if (with_aggregate) {
      const AggregateView* agg = warehouse->FindAggregate("SalesPerClerk");
      EXPECT_NE(agg, nullptr);
      digest ^= RelationDigest(agg->materialized());
    }
    return digest;
  }

  std::shared_ptr<Catalog> catalog_;
  Database db_;
  std::shared_ptr<WarehouseSpec> spec_;
};

TEST_F(ParallelIntegrateTest, IncrementalDigestIdenticalAcrossThreadCounts) {
  uint64_t serial = RunWorkload(1, MaintenanceStrategy::kIncremental,
                                /*with_aggregate=*/false);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(RunWorkload(threads, MaintenanceStrategy::kIncremental,
                          /*with_aggregate=*/false),
              serial)
        << threads << " threads";
  }
}

TEST_F(ParallelIntegrateTest, RecomputeDigestIdenticalAcrossThreadCounts) {
  uint64_t serial = RunWorkload(1, MaintenanceStrategy::kRecomputeFromInverse,
                                /*with_aggregate=*/false);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(RunWorkload(threads, MaintenanceStrategy::kRecomputeFromInverse,
                          /*with_aggregate=*/false),
              serial)
        << threads << " threads";
  }
}

TEST_F(ParallelIntegrateTest, AggregatesConvergeAcrossThreadCounts) {
  uint64_t serial = RunWorkload(1, MaintenanceStrategy::kIncremental,
                                /*with_aggregate=*/true);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(RunWorkload(threads, MaintenanceStrategy::kIncremental,
                          /*with_aggregate=*/true),
              serial)
        << threads << " threads";
  }
}

TEST_F(ParallelIntegrateTest, TransactionDigestIdenticalAcrossThreadCounts) {
  auto run = [&](size_t threads) {
    Source source(db_);
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
    DWC_EXPECT_OK(warehouse);
    warehouse->SetEvaluatorOptions(ForcedParallel(threads));
    // One multi-relation transaction: new clerk plus their sales.
    std::vector<UpdateOp> ops;
    ops.push_back(UpdateOp{"Emp", {T({I(5000), I(40)})}, {}});
    ops.push_back(UpdateOp{
        "Sale", {T({I(1 << 25), I(5000)}), T({I((1 << 25) + 1), I(5000)})},
        {}});
    Result<std::vector<CanonicalDelta>> deltas =
        source.ApplyTransaction(ops);
    DWC_EXPECT_OK(deltas);
    DWC_EXPECT_OK(warehouse->IntegrateTransaction(*deltas));
    DWC_EXPECT_OK(CheckConsistency(*warehouse, source.db()));
    return StateDigest(warehouse->state()).Combined();
  };
  uint64_t serial = run(1);
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

TEST_F(ParallelIntegrateTest, ParallelKernelsEngageAndStatsMerge) {
  Source source(db_);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  warehouse->SetEvaluatorOptions(ForcedParallel(4));
  Rng rng(23);
  Result<CanonicalDelta> delta = source.Apply(MakeBatch(&rng));
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));
  const EvalStats& stats = warehouse->last_integrate_stats();
  EXPECT_GT(stats.joins, 0u);
  EXPECT_GT(stats.parallel_kernels, 0u) << stats.ToString();
}

// The crash-injection contract, step for step: at every hook step index,
// the parallel warehouse must fail at the same step with the same
// state-mutation outcome as the serial one (evaluation is hoisted and
// side-effect-free; mutation happens only in the serial commit phase).
TEST_F(ParallelIntegrateTest, HookStepSemanticsPreservedUnderParallelism) {
  // First count the steps of a clean serial integrate.
  int total_steps = 0;
  {
    Source source(db_);
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
    DWC_ASSERT_OK(warehouse);
    warehouse->SetIntegrationHook([&](int step) {
      total_steps = step + 1;
      return Status::Ok();
    });
    Rng rng(23);
    Result<CanonicalDelta> delta = source.Apply(MakeBatch(&rng));
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(warehouse->Integrate(*delta));
  }
  ASSERT_GT(total_steps, 1);

  // Outcome of crashing at step `k` with `threads`: did the integrate fail,
  // and did the state change?
  auto crash_outcome = [&](int k, size_t threads) {
    Source source(db_);
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
    DWC_EXPECT_OK(warehouse);
    warehouse->SetEvaluatorOptions(ForcedParallel(threads));
    uint64_t before = StateDigest(warehouse->state()).Combined();
    warehouse->SetIntegrationHook([k](int step) {
      return step == k ? Status::Internal("injected crash") : Status::Ok();
    });
    Rng rng(23);
    Result<CanonicalDelta> delta = source.Apply(MakeBatch(&rng));
    DWC_EXPECT_OK(delta);
    Status status = warehouse->Integrate(*delta);
    uint64_t after = StateDigest(warehouse->state()).Combined();
    return std::make_pair(status.ok(), before == after);
  };
  for (int k = 0; k < total_steps; ++k) {
    auto serial = crash_outcome(k, 1);
    EXPECT_FALSE(serial.first) << "hook at step " << k << " did not fire";
    for (size_t threads : {size_t{2}, size_t{4}}) {
      EXPECT_EQ(crash_outcome(k, threads), serial)
          << "step " << k << ", " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace dwc
