// Crash-safe integration: checkpoint + DELTA journal replay must reproduce
// the exact pre-crash state no matter where inside Integrate a crash tears
// the in-memory warehouse. The crash-injection harness kills the victim at
// every internal step index in turn (SetIntegrationHook) and recovers with
// RecoverWarehouse after each kill.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "aggregate/aggregate_view.h"
#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "warehouse/persistence.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    spec_ = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(context_.catalog, context_.views));
    source_ = std::make_unique<Source>(context_.db, "s1");
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
    // A summary table so the sweep also covers the aggregate-folding steps.
    AggregateViewDef def;
    def.name = "SalesPerClerk";
    def.source = Expr::Base("Sold");
    def.group_by = {"clerk"};
    def.aggregates = {{AggFunc::kCount, "", "n"}};
    DWC_ASSERT_OK(warehouse_->AddAggregateView(def));
  }

  // A short update stream respecting the inclusion Sale(clerk) <= Emp(clerk).
  static std::vector<UpdateOp> Stream() {
    return {
        {"Emp", {T({S("Nina"), I(27)})}, {}},
        {"Sale", {T({S("radio"), S("Nina")})}, {}},
        {"Emp", {T({S("Omar"), I(31)})}, {}},
        {"Sale", {T({S("tv"), S("Omar")})}, {T({S("radio"), S("Nina")})}},
        {"Emp", {}, {T({S("Nina"), I(27)})}},
        {"Sale", {T({S("camera"), S("Omar")})}, {T({S("PC"), S("John")})}},
    };
  }

  static uint64_t Fingerprint(const Warehouse& warehouse) {
    return StateDigest(warehouse.state()).Combined();
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(CrashRecoveryTest, JournalReplayReproducesCleanRun) {
  Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
  DWC_ASSERT_OK(checkpoint);
  DeltaJournal journal;
  for (const UpdateOp& op : Stream()) {
    Result<CanonicalDelta> delta = source_->Apply(op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(warehouse_->Integrate(*delta));
    journal.Append(*delta);
  }
  EXPECT_EQ(journal.entries(), Stream().size());
  Result<RestoredWarehouse> recovered = RecoverWarehouse(*checkpoint, journal);
  DWC_ASSERT_OK(recovered);
  EXPECT_TRUE(recovered->warehouse->state().SameStateAs(warehouse_->state()));
  const AggregateView* live = warehouse_->FindAggregate("SalesPerClerk");
  const AggregateView* replayed =
      recovered->warehouse->FindAggregate("SalesPerClerk");
  ASSERT_NE(live, nullptr);
  ASSERT_NE(replayed, nullptr);
  EXPECT_TRUE(testing::RelationsEqual(replayed->materialized(),
                                      live->materialized()));
  DWC_ASSERT_OK(CheckConsistency(*recovered->warehouse, source_->db()));
}

TEST_F(CrashRecoveryTest, CrashAtEveryStepRecoversExactPreCrashState) {
  Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
  DWC_ASSERT_OK(checkpoint);
  DeltaJournal journal;
  bool any_crash = false;
  bool any_torn = false;
  for (const UpdateOp& op : Stream()) {
    Result<CanonicalDelta> delta = source_->Apply(op);
    DWC_ASSERT_OK(delta);
    for (int crash_at = 0;; ++crash_at) {
      // A fresh victim booted from the durable state (checkpoint + journal
      // so far), killed at internal step `crash_at` of this integration.
      Result<RestoredWarehouse> victim = RecoverWarehouse(*checkpoint, journal);
      DWC_ASSERT_OK(victim);
      uint64_t durable = Fingerprint(*victim->warehouse);
      bool fired = false;
      victim->warehouse->SetIntegrationHook([&fired, crash_at](int step) {
        if (step == crash_at) {
          fired = true;
          return Status::Internal("simulated crash");
        }
        return Status::Ok();
      });
      Status status = victim->warehouse->Integrate(*delta);
      if (status.ok()) {
        // The integration ran past the last internal step: this delta is
        // committed, journal it and move on. (The hook must not have fired
        // — a swallowed crash would be a torn commit.)
        ASSERT_FALSE(fired);
        journal.Append(*delta);
        DWC_ASSERT_OK(CheckConsistency(*victim->warehouse, source_->db()));
        break;
      }
      any_crash = true;
      ASSERT_TRUE(fired) << status.ToString();
      ASSERT_EQ(status.code(), StatusCode::kInternal);
      // The victim's in-memory state may be torn (crashes mid-commit leave
      // partial mutations behind by design — recovery, not rollback, is
      // the contract); it is simply discarded.
      if (Fingerprint(*victim->warehouse) != durable) {
        any_torn = true;
      }
      // Replay lands exactly on the last durable state: the in-flight
      // delta was never journaled, so it is cleanly absent.
      Result<RestoredWarehouse> recovered =
          RecoverWarehouse(*checkpoint, journal);
      DWC_ASSERT_OK(recovered);
      EXPECT_EQ(Fingerprint(*recovered->warehouse), durable)
          << "crash at step " << crash_at;
    }
  }
  // The sweep must have actually exercised crashes, including ones that
  // left visibly torn state (that is what the journal exists for).
  EXPECT_TRUE(any_crash);
  EXPECT_TRUE(any_torn);
  Result<RestoredWarehouse> final_state =
      RecoverWarehouse(*checkpoint, journal);
  DWC_ASSERT_OK(final_state);
  DWC_ASSERT_OK(CheckConsistency(*final_state->warehouse, source_->db()));
}

TEST_F(CrashRecoveryTest, TransactionCrashSweepNeverTearsTheJournal) {
  Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
  DWC_ASSERT_OK(checkpoint);
  DeltaJournal journal;
  Result<std::vector<CanonicalDelta>> deltas = source_->ApplyTransaction({
      {"Emp", {T({S("Nina"), I(27)})}, {}},
      {"Sale", {T({S("radio"), S("Nina")})}, {T({S("VCR"), S("Mary")})}},
  });
  DWC_ASSERT_OK(deltas);
  bool any_crash = false;
  for (int crash_at = 0;; ++crash_at) {
    Result<RestoredWarehouse> victim = RecoverWarehouse(*checkpoint, journal);
    DWC_ASSERT_OK(victim);
    uint64_t durable = Fingerprint(*victim->warehouse);
    bool fired = false;
    victim->warehouse->SetIntegrationHook([&fired, crash_at](int step) {
      return step == crash_at ? (fired = true, Status::Internal("crash"))
                              : Status::Ok();
    });
    Status status = victim->warehouse->IntegrateTransaction(*deltas);
    if (status.ok()) {
      ASSERT_FALSE(fired);
      for (const CanonicalDelta& delta : *deltas) {
        journal.Append(delta);
      }
      DWC_ASSERT_OK(CheckConsistency(*victim->warehouse, source_->db()));
      break;
    }
    any_crash = true;
    Result<RestoredWarehouse> recovered =
        RecoverWarehouse(*checkpoint, journal);
    DWC_ASSERT_OK(recovered);
    EXPECT_EQ(Fingerprint(*recovered->warehouse), durable)
        << "crash at step " << crash_at;
  }
  EXPECT_TRUE(any_crash);
  Result<RestoredWarehouse> final_state =
      RecoverWarehouse(*checkpoint, journal);
  DWC_ASSERT_OK(final_state);
  DWC_ASSERT_OK(CheckConsistency(*final_state->warehouse, source_->db()));
}

TEST_F(CrashRecoveryTest, RecomputeStrategyCrashesAreRecoverableToo) {
  Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
  DWC_ASSERT_OK(checkpoint);
  DeltaJournal journal;
  Result<CanonicalDelta> delta =
      source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(delta);
  for (int crash_at = 0;; ++crash_at) {
    Result<RestoredWarehouse> victim = RecoverWarehouse(
        *checkpoint, journal, MaintenanceStrategy::kRecomputeFromInverse);
    DWC_ASSERT_OK(victim);
    uint64_t durable = Fingerprint(*victim->warehouse);
    bool fired = false;
    victim->warehouse->SetIntegrationHook([&fired, crash_at](int step) {
      return step == crash_at ? (fired = true, Status::Internal("crash"))
                              : Status::Ok();
    });
    Status status = victim->warehouse->Integrate(*delta);
    if (status.ok()) {
      ASSERT_FALSE(fired);
      journal.Append(*delta);
      DWC_ASSERT_OK(CheckConsistency(*victim->warehouse, source_->db()));
      break;
    }
    Result<RestoredWarehouse> recovered = RecoverWarehouse(
        *checkpoint, journal, MaintenanceStrategy::kRecomputeFromInverse);
    DWC_ASSERT_OK(recovered);
    EXPECT_EQ(Fingerprint(*recovered->warehouse), durable);
  }
}

TEST_F(CrashRecoveryTest, DamagedJournalFailsLoudlyOnReplay) {
  Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
  DWC_ASSERT_OK(checkpoint);
  Result<CanonicalDelta> delta =
      source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(delta);
  CanonicalDelta tampered = *delta;
  tampered.state_digest ^= 1;  // Bit flip in the journaled digest.
  DeltaJournal journal;
  journal.Append(tampered);
  Result<RestoredWarehouse> recovered = RecoverWarehouse(*checkpoint, journal);
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CrashRecoveryTest, ClearAfterCheckpointStartsAFreshJournal) {
  DeltaJournal journal;
  Result<CanonicalDelta> first =
      source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(first);
  DWC_ASSERT_OK(warehouse_->Integrate(*first));
  journal.Append(*first);
  // Take a fresh checkpoint of the current state and truncate the journal:
  // replay from here must not need (or see) the pre-checkpoint delta.
  Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
  DWC_ASSERT_OK(checkpoint);
  journal.Clear();
  EXPECT_TRUE(journal.empty());
  Result<CanonicalDelta> second =
      source_->Apply({"Emp", {T({S("Omar"), I(31)})}, {}});
  DWC_ASSERT_OK(second);
  DWC_ASSERT_OK(warehouse_->Integrate(*second));
  journal.Append(*second);
  Result<RestoredWarehouse> recovered = RecoverWarehouse(*checkpoint, journal);
  DWC_ASSERT_OK(recovered);
  EXPECT_TRUE(recovered->warehouse->state().SameStateAs(warehouse_->state()));
}

}  // namespace
}  // namespace dwc
