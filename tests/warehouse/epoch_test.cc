// Epoch lifecycle edge cases for the snapshot-isolation layer
// (warehouse/epoch.h): publication on every committed state transition,
// isolation across in-place and copy-on-write commits, failed integrations
// publishing nothing, snapshots outliving checkpoint + Resume (and the
// warehouse object itself), reclamation with zero readers, and the
// epoch-lag shed policy. The cross-thread torture lives in
// concurrent_serving_chaos_test.cc; these tests pin down the single-thread
// semantics the chaos suite builds on.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "warehouse/epoch.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(context_.catalog, context_.views);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
  }

  // One canonical Emp delta: hire `hire`; when `fire` is non-null, fire
  // that exact (clerk, age) tuple too.
  CanonicalDelta EmpDelta(Source* source, const char* hire, int age,
                          const char* fire = nullptr, int fire_age = 0) {
    UpdateOp op;
    op.relation = "Emp";
    op.inserts = {T({S(hire), I(age)})};
    if (fire != nullptr) {
      op.deletes = {T({S(fire), I(fire_age)})};
    }
    Result<CanonicalDelta> delta = source->Apply(op);
    EXPECT_TRUE(delta.ok()) << delta.status().ToString();
    return std::move(delta).value();
  }

  uint64_t QueryDigest(const Warehouse& warehouse,
                       const SnapshotHandle& snapshot, const char* text) {
    Result<ExprRef> query = ParseExpr(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    Result<Relation> answer = warehouse.AnswerQueryAt(snapshot, *query);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return answer.ok() ? RelationDigest(*answer) : 0;
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
};

TEST_F(EpochTest, LoadPublishesEpochOne) {
  Result<Warehouse> warehouse = Warehouse::Load(spec_, context_.db);
  DWC_ASSERT_OK(warehouse);
  EXPECT_EQ(warehouse->current_epoch(), 1u);
  EpochStats stats = warehouse->epoch_stats();
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.live_snapshots, 0u);
  SnapshotHandle snapshot = warehouse->PinSnapshot();
  EXPECT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.epoch(), 1u);
  EXPECT_NE(snapshot.Find("Sold"), nullptr);
  EXPECT_EQ(warehouse->epoch_stats().live_snapshots, 1u);
}

TEST_F(EpochTest, InPlaceCommitAdvancesEpochAndReclaims) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  // No pins: every commit may mutate in place, and each superseded epoch
  // has zero readers, so it is reclaimed immediately at publish.
  for (int i = 0; i < 3; ++i) {
    std::string name = "Clerk" + std::to_string(i);
    DWC_ASSERT_OK(
        warehouse->Integrate(EmpDelta(&source, name.c_str(), 30 + i)));
  }
  EpochStats stats = warehouse->epoch_stats();
  EXPECT_EQ(warehouse->current_epoch(), 4u);
  EXPECT_EQ(stats.inplace_commits, 3u);
  EXPECT_EQ(stats.cow_commits, 0u);
  EXPECT_EQ(stats.retired_epochs, 0u);
  EXPECT_EQ(stats.retired_versions, 0u);
  EXPECT_EQ(stats.reclaimed_epochs, 3u);
  EXPECT_EQ(warehouse->last_integrate_epoch(), 4u);
}

TEST_F(EpochTest, SnapshotIsolatedAcrossCowCommit) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);

  SnapshotHandle snapshot = warehouse->PinSnapshot();
  uint64_t before_sold = QueryDigest(*warehouse, snapshot, "Sold");
  uint64_t before_emp = QueryDigest(*warehouse, snapshot, "Emp");

  // The pin forces the copy-on-write path; 'Mary' leaving changes Sold.
  DWC_ASSERT_OK(
      warehouse->Integrate(EmpDelta(&source, "Nina", 27, "Mary", 23)));
  EXPECT_EQ(warehouse->epoch_stats().cow_commits, 1u);
  EXPECT_EQ(warehouse->current_epoch(), 2u);

  // The pinned epoch still answers with the pre-integration state.
  EXPECT_EQ(QueryDigest(*warehouse, snapshot, "Sold"), before_sold);
  EXPECT_EQ(QueryDigest(*warehouse, snapshot, "Emp"), before_emp);
  // A fresh pin sees the new state.
  SnapshotHandle fresh = warehouse->PinSnapshot();
  EXPECT_EQ(fresh.epoch(), 2u);
  EXPECT_NE(QueryDigest(*warehouse, fresh, "Sold"), before_sold);

  // Releasing the old pin reclaims its epoch.
  EXPECT_EQ(warehouse->epoch_stats().retired_epochs, 1u);
  snapshot.Release();
  EXPECT_FALSE(snapshot.valid());
  EpochStats stats = warehouse->epoch_stats();
  EXPECT_EQ(stats.retired_epochs, 0u);
  EXPECT_EQ(stats.reclaimed_epochs, 1u);
  EXPECT_EQ(stats.live_snapshots, 1u);
}

TEST_F(EpochTest, FailedIntegrationPublishesNothing) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  warehouse->set_validate_deltas(true);

  SnapshotHandle snapshot = warehouse->PinSnapshot();
  uint64_t before = QueryDigest(*warehouse, snapshot, "Sold");

  // Non-canonical by hand: inserts a tuple that is already present. The
  // validator rejects it before any mutation; nothing publishes.
  CanonicalDelta bogus;
  bogus.relation = "Emp";
  bogus.inserts = Relation(*context_.catalog->FindSchema("Emp"));
  bogus.inserts.Insert(T({S("Mary"), I(23)}));
  bogus.deletes = Relation(*context_.catalog->FindSchema("Emp"));
  EXPECT_EQ(warehouse->Integrate(bogus).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(warehouse->current_epoch(), 1u);
  EXPECT_EQ(warehouse->last_integrate_epoch(), 0u);

  // A hook-aborted integration before the first mutation also rolls back
  // cleanly: same epoch, same answers, live state still consistent.
  warehouse->set_validate_deltas(false);
  warehouse->SetIntegrationHook([](int step) {
    return step == 0 ? Status::Internal("injected abort") : Status::Ok();
  });
  CanonicalDelta delta = EmpDelta(&source, "Nina", 27);
  EXPECT_EQ(warehouse->Integrate(delta).code(), StatusCode::kInternal);
  warehouse->SetIntegrationHook(nullptr);
  EXPECT_EQ(warehouse->current_epoch(), 1u);
  EXPECT_EQ(QueryDigest(*warehouse, snapshot, "Sold"), before);
  // The same snapshot spans the failed attempt and the eventual success.
  DWC_ASSERT_OK(warehouse->Integrate(delta));
  EXPECT_EQ(warehouse->current_epoch(), 2u);
  EXPECT_EQ(warehouse->last_integrate_epoch(), 2u);
  EXPECT_EQ(QueryDigest(*warehouse, snapshot, "Sold"), before);
  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
}

TEST_F(EpochTest, SnapshotOutlivesWarehouse) {
  SnapshotHandle snapshot;
  uint64_t sold_digest = 0;
  {
    Result<Warehouse> warehouse = Warehouse::Load(spec_, context_.db);
    DWC_ASSERT_OK(warehouse);
    snapshot = warehouse->PinSnapshot();
    sold_digest = RelationDigest(*snapshot.Find("Sold"));
  }
  // The handle keeps the epoch manager and the pinned versions alive past
  // the warehouse's destruction.
  ASSERT_TRUE(snapshot.valid());
  ASSERT_NE(snapshot.Find("Sold"), nullptr);
  EXPECT_EQ(RelationDigest(*snapshot.Find("Sold")), sold_digest);
}

TEST_F(EpochTest, SnapshotOutlivesCheckpointAndResume) {
  FaultVfs vfs;
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  Result<std::unique_ptr<DurableWarehouse>> durable =
      DurableWarehouse::Bootstrap(
          &vfs, "wh", &warehouse.value(),
          JournalStamp{source.epoch(), source.last_sequence()});
  DWC_ASSERT_OK(durable);

  SnapshotHandle snapshot = warehouse->PinSnapshot();
  uint64_t before = QueryDigest(*warehouse, snapshot, "Sold");

  DWC_ASSERT_OK(
      (*durable)->Integrate(EmpDelta(&source, "Nina", 27, "Mary", 23), &source));
  DWC_ASSERT_OK((*durable)->Checkpoint());

  // Resume rebuilds an independent warehouse at a single consistent state;
  // its snapshot timeline restarts at 1. The live snapshot still answers
  // from its pinned (pre-integration) epoch.
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs, "wh");
  DWC_ASSERT_OK(resumed);
  Warehouse& revived = *resumed->recovered.restored.warehouse;
  EXPECT_EQ(revived.current_epoch(), 1u);
  SnapshotHandle revived_snapshot = revived.PinSnapshot();
  EXPECT_NE(QueryDigest(revived, revived_snapshot, "Sold"), before);
  EXPECT_EQ(QueryDigest(*warehouse, snapshot, "Sold"), before);
}

TEST_F(EpochTest, ShedPolicyFlagsLaggingSnapshots) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  EpochOptions options;
  options.max_epoch_lag = 2;
  warehouse->SetEpochOptions(options);
  struct Event {
    uint64_t epoch, lag, pins;
  };
  std::vector<Event> events;
  warehouse->SetShedCallback([&](uint64_t epoch, uint64_t lag,
                                 uint64_t pins) {
    events.push_back(Event{epoch, lag, pins});
  });

  SnapshotHandle laggard = warehouse->PinSnapshot();
  ASSERT_EQ(laggard.epoch(), 1u);
  for (int i = 0; i < 4; ++i) {
    std::string name = "Clerk" + std::to_string(i);
    DWC_ASSERT_OK(
        warehouse->Integrate(EmpDelta(&source, name.c_str(), 30 + i)));
    if (i < 1) {
      // Within the lag bound: still serving.
      EXPECT_FALSE(laggard.shed());
    }
  }
  EXPECT_TRUE(laggard.shed());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_GT(events[0].lag, 2u);
  EXPECT_EQ(events[0].pins, 1u);
  EXPECT_EQ(warehouse->epoch_stats().shed_snapshots, 1u);

  Result<ExprRef> query = ParseExpr("Sold");
  DWC_ASSERT_OK(query);
  Result<Relation> answer = warehouse->AnswerQueryAt(laggard, *query);
  EXPECT_EQ(answer.status().code(), StatusCode::kAborted);
  // A shed handle still pins its memory until dropped; a fresh pin serves.
  SnapshotHandle fresh = warehouse->PinSnapshot();
  DWC_EXPECT_OK(warehouse->AnswerQueryAt(fresh, *query));
  // Shedding is one-shot per handle: further publishes do not re-fire.
  DWC_ASSERT_OK(warehouse->Integrate(EmpDelta(&source, "Zoe", 41)));
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(EpochTest, SheddingDisabledWithZeroLagBound) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  EpochOptions options;
  options.max_epoch_lag = 0;  // Disable.
  warehouse->SetEpochOptions(options);
  SnapshotHandle laggard = warehouse->PinSnapshot();
  for (int i = 0; i < 5; ++i) {
    std::string name = "Clerk" + std::to_string(i);
    DWC_ASSERT_OK(
        warehouse->Integrate(EmpDelta(&source, name.c_str(), 30 + i)));
  }
  EXPECT_FALSE(laggard.shed());
  EXPECT_EQ(warehouse->epoch_stats().shed_snapshots, 0u);
}

TEST_F(EpochTest, AggregateViewsSnapshotIsolated) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "SalesPerClerk";
  def.source = Expr::Base("Sold");
  def.group_by = {"clerk"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));
  // Registering a view is a state transition: it publishes.
  EXPECT_EQ(warehouse->current_epoch(), 2u);

  SnapshotHandle snapshot = warehouse->PinSnapshot();
  uint64_t before = QueryDigest(*warehouse, snapshot, "SalesPerClerk");

  // A new sale by a new clerk changes the aggregate (COW: pin is held).
  UpdateOp op;
  op.relation = "Sale";
  op.inserts = {T({S("Radio"), S("John")})};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));

  EXPECT_EQ(QueryDigest(*warehouse, snapshot, "SalesPerClerk"), before);
  SnapshotHandle fresh = warehouse->PinSnapshot();
  EXPECT_NE(QueryDigest(*warehouse, fresh, "SalesPerClerk"), before);
}

TEST_F(EpochTest, CopiedWarehouseHasIndependentTimeline) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  DWC_ASSERT_OK(warehouse->Integrate(EmpDelta(&source, "Nina", 27)));
  ASSERT_EQ(warehouse->current_epoch(), 2u);

  Warehouse copy(*warehouse);
  EXPECT_EQ(copy.current_epoch(), 1u);
  EXPECT_TRUE(copy.state().SameStateAs(warehouse->state()));

  // Integrations on the copy never disturb the original's snapshots.
  SnapshotHandle original_pin = warehouse->PinSnapshot();
  uint64_t before = QueryDigest(*warehouse, original_pin, "Sold");
  Source copy_source(source.db());
  DWC_ASSERT_OK(
      copy.Integrate(EmpDelta(&copy_source, "Omar", 31, "Mary", 23)));
  EXPECT_EQ(copy.current_epoch(), 2u);
  EXPECT_EQ(warehouse->current_epoch(), 2u);
  EXPECT_EQ(QueryDigest(*warehouse, original_pin, "Sold"), before);
  EXPECT_EQ(warehouse->epoch_stats().live_snapshots, 1u);
  EXPECT_EQ(copy.epoch_stats().live_snapshots, 0u);
}

// S1 regression: last_integrate_stats()/epoch_stats()/last_integrate_epoch()
// are safe to poll from a monitor thread while the writer integrates (the
// old field was a bare struct the writer updated mid-flight; under TSan
// this test fails against that implementation).
TEST_F(EpochTest, StatsReadableWhileIntegrating) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> polls{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EvalStats stats = warehouse->last_integrate_stats();
      (void)stats;
      uint64_t epoch = warehouse->last_integrate_epoch();
      EXPECT_LE(epoch, warehouse->current_epoch());
      (void)warehouse->epoch_stats().ToString();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 20; ++i) {
    std::string name = "Clerk" + std::to_string(i);
    DWC_ASSERT_OK(
        warehouse->Integrate(EmpDelta(&source, name.c_str(), 20 + i)));
  }
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_GT(polls.load(), 0u);
  EXPECT_EQ(warehouse->last_integrate_epoch(), warehouse->current_epoch());
  const EvalStats final_stats = warehouse->last_integrate_stats();
  EXPECT_GT(final_stats.joins + final_stats.differences +
                final_stats.cache_misses + final_stats.index_probes,
            0u)
      << "the last integration's evaluation stats look empty";
}

}  // namespace
}  // namespace dwc
