#include "warehouse/warehouse.h"

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(context_.catalog, context_.views);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
};

TEST_F(WarehouseTest, LoadMaterializesViewsAndComplements) {
  Result<Warehouse> warehouse = Warehouse::Load(spec_, context_.db);
  DWC_ASSERT_OK(warehouse);
  EXPECT_NE(warehouse->FindRelation("Sold"), nullptr);
  EXPECT_NE(warehouse->FindRelation("C_Emp"), nullptr);
  EXPECT_EQ(warehouse->FindRelation("Sold")->size(), 3u);
  EXPECT_EQ(warehouse->FindRelation("Nope"), nullptr);
}

TEST_F(WarehouseTest, NullSpecRejected) {
  Result<Warehouse> warehouse = Warehouse::Load(nullptr, context_.db);
  EXPECT_EQ(warehouse.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WarehouseTest, QuerySourceStrategyNeedsSource) {
  Result<Warehouse> warehouse = Warehouse::Load(
      spec_, context_.db, MaintenanceStrategy::kQuerySource);
  DWC_ASSERT_OK(warehouse);
  CanonicalDelta delta;
  delta.relation = "Sale";
  Status status = warehouse->Integrate(delta, /*source=*/nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(WarehouseTest, AllStrategiesConverge) {
  Source s1(context_.db), s2(context_.db), s3(context_.db);
  Result<Warehouse> w1 =
      Warehouse::Load(spec_, s1.db(), MaintenanceStrategy::kIncremental);
  Result<Warehouse> w2 = Warehouse::Load(
      spec_, s2.db(), MaintenanceStrategy::kRecomputeFromInverse);
  Result<Warehouse> w3 =
      Warehouse::Load(spec_, s3.db(), MaintenanceStrategy::kQuerySource);
  DWC_ASSERT_OK(w1);
  DWC_ASSERT_OK(w2);
  DWC_ASSERT_OK(w3);

  UpdateOp op{"Emp",
              {T({S("Nina"), I(27)})},
              {T({S("Paula"), I(32)})}};
  std::vector<std::pair<Source*, Warehouse*>> pairs = {
      {&s1, &*w1}, {&s2, &*w2}, {&s3, &*w3}};
  for (auto& [source, warehouse] : pairs) {
    Result<CanonicalDelta> delta = source->Apply(op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(warehouse->Integrate(*delta, source));
    DWC_ASSERT_OK(CheckConsistency(*warehouse, source->db()));
  }
  EXPECT_TRUE(w1->state().SameStateAs(w2->state()));
  EXPECT_TRUE(w1->state().SameStateAs(w3->state()));
  // Only the query-source baseline touched its source.
  EXPECT_EQ(s1.query_count(), 0u);
  EXPECT_EQ(s2.query_count(), 0u);
  EXPECT_GT(s3.query_count(), 0u);
}

TEST_F(WarehouseTest, StrategyNames) {
  EXPECT_STREQ(MaintenanceStrategyName(MaintenanceStrategy::kIncremental),
               "incremental");
  EXPECT_STREQ(
      MaintenanceStrategyName(MaintenanceStrategy::kRecomputeFromInverse),
      "recompute-from-inverse");
  EXPECT_STREQ(MaintenanceStrategyName(MaintenanceStrategy::kQuerySource),
               "query-source");
}

TEST_F(WarehouseTest, NoOpDeltaKeepsStateIdentical) {
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);
  Database before = warehouse->state();

  // Delete a nonexistent tuple and reinsert an existing one: canonical
  // delta is empty on both sides.
  UpdateOp op{"Sale",
              {T({S("TV set"), S("Mary")})},
              {T({S("Ghost"), S("Nobody")})}};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  EXPECT_TRUE(delta->empty());
  DWC_ASSERT_OK(warehouse->Integrate(*delta));
  EXPECT_TRUE(warehouse->state().SameStateAs(before));
}

TEST_F(WarehouseTest, SourceApplyValidatesShape) {
  Source source(context_.db);
  UpdateOp bad_rel{"Nope", {T({I(1)})}, {}};
  EXPECT_EQ(source.Apply(bad_rel).status().code(), StatusCode::kNotFound);
  UpdateOp bad_arity{"Sale", {T({S("only-one")})}, {}};
  EXPECT_EQ(source.Apply(bad_arity).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WarehouseTest, SpecToStringMentionsAllParts) {
  std::string text = spec_->ToString();
  EXPECT_NE(text.find("Sold"), std::string::npos);
  EXPECT_NE(text.find("C_Emp"), std::string::npos);
  EXPECT_NE(text.find("inverses"), std::string::npos);
}

TEST_F(WarehouseTest, ComplementNameCollisionRejected) {
  // A warehouse view named like a complement would collide.
  ScriptContext context = MustRun(
      "CREATE TABLE R(a INT);\n"
      "VIEW C_R AS R;\n"
      "VIEW V AS R;\n");
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views);
  // Either the complement name collides or the spec flags the duplicate.
  if (spec.ok()) {
    // C_R is a full copy, so R's complement is provably empty and no
    // collision materializes — that is acceptable too.
    EXPECT_TRUE(spec->complements().empty());
  } else {
    EXPECT_EQ(spec.status().code(), StatusCode::kAlreadyExists);
  }
}

}  // namespace
}  // namespace dwc
