// Chaos property test: a star-schema warehouse fed through a faulty
// DeltaChannel (drops, duplicates, bounded reordering, corruption) must,
// after DeltaIngestor::Drain, be exactly consistent with the source — and
// the update-independence guarantee must degrade gracefully: zero source
// queries when no gap was injected, and otherwise only the queries the
// recovery ladder counted.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/channel.h"
#include "warehouse/ingest.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

class FaultInjectionTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void BuildHarness(const FaultProfile& profile) {
    StarSchemaConfig config;
    config.customers = 10;
    config.suppliers = 5;
    config.parts = 12;
    config.locations = 3;
    config.orders = 30;
    config.sales = 60;
    config.seed = GetParam();
    Result<StarSchema> star = BuildStarSchema(config);
    DWC_ASSERT_OK(star);
    spec_ = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(star->catalog, star->views));
    source_ = std::make_unique<Source>(star->db, "star");
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
    channel_ = std::make_unique<DeltaChannel>(profile);
    // Attached while warehouse == source: the ingestor snapshots this as its
    // known-consistent starting point.
    ingestor_ = std::make_unique<DeltaIngestor>(warehouse_.get(),
                                                source_.get(), channel_.get());
  }

  // Forwards every currently deliverable delta into the ingestor.
  void Pump() {
    for (std::optional<CanonicalDelta> got = channel_->Poll(); got;
         got = channel_->Poll()) {
      DWC_ASSERT_OK(ingestor_->Receive(*got));
    }
  }

  // Runs `steps` random source updates (every 5th a multi-relation
  // transaction) through the channel, pumping deliveries as they arrive,
  // then drains and reconciles.
  void RunStream(int steps) {
    Rng rng(GetParam() * 131 + 9);
    std::vector<std::string> updatable = {"Sales", "Orders", "Customer",
                                          "Supplier", "Part", "Location"};
    UpdateStreamOptions options;
    options.max_inserts = 3;
    options.max_deletes = 2;
    options.db_options.int_domain = 100000;
    for (int step = 0; step < steps; ++step) {
      if (step % 5 == 4) {
        std::vector<UpdateOp> ops;
        Source scratch(source_->db());
        size_t n = 1 + rng.Below(3);
        for (size_t i = 0; i < n; ++i) {
          Result<UpdateOp> op = GenerateRandomUpdate(
              scratch.db(), updatable[rng.Below(updatable.size())], &rng,
              options);
          DWC_ASSERT_OK(op);
          DWC_ASSERT_OK(scratch.Apply(*op));
          ops.push_back(std::move(op).value());
        }
        Result<std::vector<CanonicalDelta>> deltas =
            source_->ApplyTransaction(ops);
        DWC_ASSERT_OK(deltas);
        for (const CanonicalDelta& delta : *deltas) {
          channel_->Send(delta);
        }
      } else {
        Result<UpdateOp> op = GenerateRandomUpdate(
            source_->db(), updatable[rng.Below(updatable.size())], &rng,
            options);
        DWC_ASSERT_OK(op);
        Result<CanonicalDelta> delta = source_->Apply(*op);
        DWC_ASSERT_OK(delta);
        channel_->Send(*delta);
      }
      Pump();
      // Periodic full reconciliation mid-stream: convergence must not
      // depend on reaching the end of the run.
      if (step % 10 == 9) {
        DWC_ASSERT_OK(ingestor_->Drain());
        DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
      }
    }
    DWC_ASSERT_OK(ingestor_->Drain());
  }

  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
  std::unique_ptr<DeltaChannel> channel_;
  std::unique_ptr<DeltaIngestor> ingestor_;
};

TEST_P(FaultInjectionTest, DuplicatesAndReorderingNeverTouchTheSource) {
  // No drops, no corruption: every delta eventually arrives intact, so the
  // ladder must recover purely from the channel (dedup + buffering +
  // outbox retransmission) and the zero-source-queries guarantee of
  // update independence must survive unscathed.
  FaultProfile profile;
  profile.duplicate_rate = 0.2;
  profile.reorder_rate = 0.2;
  profile.seed = GetParam();
  BuildHarness(profile);
  RunStream(40);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
  EXPECT_EQ(source_->query_count(), 0u);
  EXPECT_EQ(ingestor_->stats().source_queries, 0u);
  EXPECT_EQ(ingestor_->stats().base_resyncs, 0u);
  EXPECT_EQ(ingestor_->stats().full_resyncs, 0u);
  EXPECT_EQ(ingestor_->buffered(), 0u);
}

TEST_P(FaultInjectionTest, MixedFaultsUpToTwentyPercentConverge) {
  FaultProfile profile;
  profile.drop_rate = 0.1;
  profile.duplicate_rate = 0.1;
  profile.reorder_rate = 0.2;
  profile.corrupt_rate = 0.05;
  profile.seed = GetParam();
  BuildHarness(profile);
  RunStream(40);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
  // Graceful degradation: the source may have been queried, but only by
  // the counted ladder rungs — never behind the stats' back.
  EXPECT_EQ(source_->query_count(), ingestor_->stats().source_queries);
  EXPECT_EQ(ingestor_->buffered(), 0u);
  EXPECT_EQ(ingestor_->next_expected(), source_->last_sequence() + 1);
}

TEST_P(FaultInjectionTest, HeavyLossConvergesThroughTheLadder) {
  FaultProfile profile;
  profile.drop_rate = 0.2;
  profile.corrupt_rate = 0.2;
  profile.seed = GetParam();
  BuildHarness(profile);
  RunStream(40);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
  EXPECT_EQ(source_->query_count(), ingestor_->stats().source_queries);
  // At 20% drop over a 40+ delta stream the ladder cannot stay idle.
  EXPECT_GT(ingestor_->stats().gaps_detected, 0u);
  EXPECT_GT(ingestor_->stats().retransmit_attempts, 0u);
}

TEST_P(FaultInjectionTest, SameSeedReplaysToIdenticalStats) {
  FaultProfile profile;
  profile.drop_rate = 0.1;
  profile.duplicate_rate = 0.1;
  profile.reorder_rate = 0.1;
  profile.corrupt_rate = 0.1;
  profile.seed = GetParam();
  BuildHarness(profile);
  RunStream(40);
  IntegrationStats first = ingestor_->stats();
  ChannelStats first_channel = channel_->stats();
  BuildHarness(profile);
  RunStream(40);
  EXPECT_EQ(ingestor_->stats().ToString(), first.ToString());
  EXPECT_EQ(channel_->stats().ToString(), first_channel.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjectionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dwc
