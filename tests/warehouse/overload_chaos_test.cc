// Overload chaos suite for the runtime governor (labeled dwc_tsan: its
// claims are race claims, so CI runs it under ThreadSanitizer).
//
// Reader threads storm the warehouse through a Governor with adversarial
// CancelTokens — already-expired deadlines, one-tuple budgets, pre-fired
// cancel flags — while one writer drives fault-injected integrations
// through DeltaIngestor and flaps the source behind the per-source circuit
// breaker (an injected outage plus a delta that never reaches the channel's
// outbox, so recovery must go to the source and fail). The invariants:
//
//   - every integration that commits matches the digest oracle recorded at
//     publication, no matter how many reads were cancelled around it;
//   - cancelled / timed-out / budget-killed reads never publish anything
//     and never corrupt the subplan cache (successful re-reads of the same
//     queries keep verifying against the oracle);
//   - the breaker trips open on the flapping source, integration of healthy
//     traffic continues while repairs are deferred, and the half-open probe
//     after the outage heals replays the backlog to a final state that is
//     digest-identical with the source;
//   - when the storm ends: no snapshot pins, no retired epochs, breaker
//     closed, warehouse exactly consistent.

#include <gtest/gtest.h>


#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "runtime/breaker.h"
#include "runtime/cancel.h"
#include "runtime/governor.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "warehouse/channel.h"
#include "warehouse/ingest.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

constexpr int kReaderThreads = 4;
constexpr int kWriterSteps = 36;
// The flap window: the source goes dark at kOutageStart (and the update
// generated that step never reaches the channel, forcing a source-backed
// repair), service returns at kOutageEnd.
constexpr int kOutageStart = 12;
constexpr int kOutageEnd = 18;

struct EpochOracle {
  std::map<std::string, uint64_t> relation_digests;
  std::vector<uint64_t> query_digests;
};

class OverloadChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void BuildHarness() {
    StarSchemaConfig config;
    config.customers = 10;
    config.suppliers = 5;
    config.parts = 12;
    config.locations = 3;
    config.orders = 30;
    config.sales = 60;
    config.seed = GetParam();
    Result<StarSchema> star = BuildStarSchema(config);
    DWC_ASSERT_OK(star);
    spec_ = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(star->catalog, star->views));
    source_ = std::make_unique<Source>(star->db, "star");
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
    EvaluatorOptions options;
    options.cache_budget_tuples = 1 << 16;
    warehouse_->SetEvaluatorOptions(options);
    // Transport faults on top of the deterministic outage: the recovery
    // ladder keeps running (and keeps being deferred) under the readers.
    FaultProfile profile;
    profile.drop_rate = 0.08;
    profile.duplicate_rate = 0.08;
    profile.reorder_rate = 0.1;
    profile.seed = GetParam();
    channel_ = std::make_unique<DeltaChannel>(profile);
    // A small breaker so the storm traverses closed → open → (possibly
    // re-tripped) half-open → closed within one run.
    RetryPolicy policy;
    policy.breaker.failure_threshold = 2;
    policy.breaker.open_ticks = 4;
    policy.breaker.max_open_ticks = 16;
    policy.breaker.jitter_seed = GetParam() * 0x9E3779B97F4A7C15ULL + 1;
    ingestor_ = std::make_unique<DeltaIngestor>(warehouse_.get(),
                                                source_.get(), channel_.get(),
                                                policy);
    ingestor_->set_commit_hook([this](const CommitEvent& event) {
      (void)event;
      RecordOracle();
      return Status::Ok();
    });
    // Tight limits so the ladder actually engages under four readers.
    GovernorOptions gov;
    gov.max_concurrent_reads = 2;
    gov.max_concurrent_maintenance = 1;
    gov.max_read_queue = 4;
    gov.stale_only_queue_depth = 2;
    gov.maintenance_only_queue_depth = 4;
    gov.stale_only_epoch_lag = 4;
    gov.maintenance_only_epoch_lag = 64;
    governor_ = std::make_unique<Governor>(gov);
    for (const char* text :
         {"FactSales", "select[quantity >= 3](FactSales)",
          "project[supp_region, quantity](FactSales)"}) {
      Result<ExprRef> query = ParseExpr(text);
      DWC_ASSERT_OK(query);
      queries_.push_back(std::move(query).value());
    }
    RecordOracle();
  }

  void RecordOracle() {
    SnapshotHandle snapshot = warehouse_->PinSnapshot();
    ASSERT_TRUE(snapshot.valid());
    EpochOracle oracle;
    for (const auto& [name, rel] : snapshot.relations()) {
      oracle.relation_digests[name] = RelationDigest(*rel);
    }
    for (const ExprRef& query : queries_) {
      Result<Relation> answer = warehouse_->AnswerQueryAt(snapshot, query);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      oracle.query_digests.push_back(RelationDigest(*answer));
    }
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle_[snapshot.epoch()] = std::move(oracle);
    oracle_cv_.notify_all();
  }

  bool WaitForOracle(uint64_t epoch, EpochOracle* out) {
    std::unique_lock<std::mutex> lock(oracle_mu_);
    bool ok = oracle_cv_.wait_for(lock, std::chrono::seconds(60), [&] {
      return oracle_.count(epoch) > 0;
    });
    if (ok) {
      *out = oracle_[epoch];
    }
    return ok;
  }

  // An adversarial token: some dimension is drawn hostile often enough
  // that every storm sees real DeadlineExceeded / ResourceExhausted /
  // Aborted traffic, while enough tokens stay benign that the oracle gets
  // verified too.
  std::shared_ptr<CancelToken> MakeToken(Rng* rng) {
    auto token = std::make_shared<CancelToken>();
    switch (rng->Below(5)) {
      case 0:  // Already expired: fails at the very first check point.
        token->set_deadline(CancelToken::Clock::now());
        break;
      case 1:  // Tight but real deadline; may or may not make it.
        token->set_deadline(CancelToken::Clock::now() +
                            std::chrono::microseconds(rng->Below(200)));
        break;
      case 2:  // Budget far below the fact table's size.
        token->set_budget_tuples(1 + rng->Below(4));
        break;
      case 3:  // Pre-fired external cancel (a client that already hung up).
        token->Cancel();
        break;
      default:  // Benign: generous in every dimension.
        token->set_deadline(CancelToken::Clock::now() +
                            std::chrono::seconds(30));
        break;
    }
    return token;
  }

  void ReaderLoop(uint64_t reader_seed, std::atomic<uint64_t>* verified,
                  std::atomic<uint64_t>* governed_failures) {
    Rng rng(reader_seed);
    // The reader's stale fallback: a snapshot pinned on an earlier lap,
    // served when the ladder only admits stale reads.
    SnapshotHandle stale;
    while (!done_.load(std::memory_order_acquire)) {
      std::shared_ptr<CancelToken> token = MakeToken(&rng);
      bool allow_stale = stale.valid() && rng.Below(2) == 0;
      Result<Governor::Ticket> ticket =
          governor_->AdmitRead(token.get(), allow_stale);
      if (!ticket.ok()) {
        // Shed, queue-full, or queue-time deadline — never anything else.
        ASSERT_TRUE(ticket.status().code() == StatusCode::kResourceExhausted ||
                    ticket.status().code() == StatusCode::kDeadlineExceeded)
            << ticket.status().ToString();
        governed_failures->fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      SnapshotHandle fresh;
      if (!ticket->stale_only()) {
        fresh = warehouse_->PinSnapshot();
        ASSERT_TRUE(fresh.valid());
      }
      const SnapshotHandle& snapshot = ticket->stale_only() ? stale : fresh;
      size_t q = rng.Below(queries_.size());
      Result<Relation> answer =
          warehouse_->AnswerQueryAt(snapshot, queries_[q], nullptr,
                                    token.get());
      if (!answer.ok()) {
        // A governed failure: the token fired (DeadlineExceeded /
        // ResourceExhausted / Aborted-by-cancel) or the epoch-lag policy
        // shed the stale snapshot (Aborted). Partial work is discarded;
        // nothing publishes; the next lap re-verifies the oracle.
        StatusCode code = answer.status().code();
        ASSERT_TRUE(code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kAborted)
            << answer.status().ToString();
        governed_failures->fetch_add(1, std::memory_order_relaxed);
      } else {
        EpochOracle oracle;
        ASSERT_TRUE(WaitForOracle(snapshot.epoch(), &oracle))
            << "oracle for epoch " << snapshot.epoch() << " never recorded";
        ASSERT_EQ(RelationDigest(*answer), oracle.query_digests[q])
            << "query " << q << " at epoch " << snapshot.epoch();
        verified->fetch_add(1, std::memory_order_relaxed);
      }
      if (!ticket->stale_only()) {
        // Keep the newest pin around as the next stale fallback.
        stale = std::move(fresh);
      }
    }
  }

  // One writer step's ingest work, admitted as maintenance.
  void PumpChannel() {
    Result<Governor::Ticket> ticket = governor_->AdmitMaintenance();
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    for (std::optional<CanonicalDelta> got = channel_->Poll(); got;
         got = channel_->Poll()) {
      Status received = ingestor_->Receive(*got);
      ASSERT_TRUE(received.ok()) << received.ToString();
    }
  }

  void DrainOnce() {
    Result<Governor::Ticket> ticket = governor_->AdmitMaintenance();
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    Status drained = ingestor_->Drain();
    ASSERT_TRUE(drained.ok()) << drained.ToString();
  }

  void WriterLoop() {
    Rng rng(GetParam() * 131 + 9);
    std::vector<std::string> updatable = {"Sales", "Orders", "Customer",
                                          "Supplier", "Part", "Location"};
    UpdateStreamOptions options;
    options.max_inserts = 3;
    options.max_deletes = 2;
    options.db_options.int_domain = 100000;
    for (int step = 0; step < kWriterSteps; ++step) {
      if (step == kOutageStart) {
        source_->set_outage_hook(
            [] { return Status::Internal("injected source outage"); });
      }
      if (step == kOutageEnd) {
        source_->set_outage_hook({});
      }
      Result<UpdateOp> op = GenerateRandomUpdate(
          source_->db(), updatable[rng.Below(updatable.size())], &rng,
          options);
      ASSERT_TRUE(op.ok()) << op.status().ToString();
      Result<CanonicalDelta> delta = source_->Apply(*op);
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      if (step != kOutageStart) {
        channel_->Send(*delta);
      }
      // The kOutageStart delta is applied and sequenced at the source but
      // never transmitted: it is not in the outbox, so retransmit (rung 1)
      // can never recover it and only a source-backed resync can — which
      // the outage hook fails until step kOutageEnd. That forces the
      // breaker to trip regardless of the fault seed.
      PumpChannel();
      if (step >= kOutageStart || step % 3 == 2) {
        // Drain every step from the outage on: each call ticks the
        // breaker's logical clock through open → half-open.
        DrainOnce();
      }
      governor_->ReportEpochLag(warehouse_->epoch_stats().retired_epochs);
    }
    // The storm is over; the source is healthy. Keep draining until the
    // half-open probe fires, the resync replays the deferred backlog, and
    // the watermark catches up. Bounded: a stuck breaker is a failure.
    for (int i = 0; i < 300; ++i) {
      if (ingestor_->next_expected() > source_->last_sequence() &&
          ingestor_->breaker().state() == CircuitBreaker::State::kClosed) {
        break;
      }
      DrainOnce();
    }
  }

  void RunStorm() {
    std::atomic<uint64_t> verified{0};
    std::atomic<uint64_t> governed_failures{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaderThreads);
    for (int r = 0; r < kReaderThreads; ++r) {
      readers.emplace_back([this, r, &verified, &governed_failures] {
        ReaderLoop(GetParam() * 977 + static_cast<uint64_t>(r), &verified,
                   &governed_failures);
      });
    }
    WriterLoop();
    done_.store(true, std::memory_order_release);
    for (std::thread& reader : readers) {
      reader.join();
    }

    // The storm exercised both sides of the governor: verified answers and
    // governed refusals (the pre-expired / pre-cancelled tokens guarantee
    // the latter on every seed).
    EXPECT_GT(verified.load(), 0u);
    EXPECT_GT(governed_failures.load(), 0u);

    // Breaker lifecycle: the flap tripped it, integration survived it, and
    // the recovery replayed the backlog to a digest-identical state.
    const IntegrationStats& stats = ingestor_->stats();
    EXPECT_GE(ingestor_->breaker().trips(), 1u) << stats.ToString();
    EXPECT_GT(stats.resync_failures, 0u);
    EXPECT_GT(stats.breaker_deferred, 0u);
    EXPECT_EQ(ingestor_->breaker().state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(ingestor_->next_expected(), source_->last_sequence() + 1);
    EXPECT_EQ(ingestor_->buffered(), 0u);
    DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));

    // Cancelled work never pinned anything durably and never published.
    EpochStats epochs = warehouse_->epoch_stats();
    EXPECT_EQ(epochs.live_snapshots, 0u);
    EXPECT_EQ(epochs.retired_epochs, 0u);
    EXPECT_EQ(epochs.current_epoch, warehouse_->current_epoch());

    GovernorStats gov = governor_->stats();
    EXPECT_GT(gov.admitted_reads, 0u);
    EXPECT_GT(gov.admitted_maintenance, 0u);
  }

  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
  std::unique_ptr<DeltaChannel> channel_;
  std::unique_ptr<DeltaIngestor> ingestor_;
  std::unique_ptr<Governor> governor_;
  std::vector<ExprRef> queries_;

  std::mutex oracle_mu_;
  std::condition_variable oracle_cv_;
  std::map<uint64_t, EpochOracle> oracle_;
  std::atomic<bool> done_{false};
};

TEST_P(OverloadChaosTest, AdversarialStormWithFlappingSource) {
  BuildHarness();
  RunStorm();
  // Every ladder source query is visible to the source (failed RPCs count
  // as traffic too).
  EXPECT_EQ(source_->query_count(), ingestor_->stats().source_queries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dwc
