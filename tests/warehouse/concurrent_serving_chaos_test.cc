// Chaos suite for snapshot-isolated concurrent serving (labeled dwc_tsan:
// its claims are race claims, so CI runs it under ThreadSanitizer).
//
// One writer thread drives a star-schema source through a seeded
// fault-injected DeltaChannel (drops, duplicates, bounded reordering,
// corruption) into DeltaIngestor → Warehouse, with deliberate rolled-back
// integration attempts mixed in. Meanwhile reader threads storm
// PinSnapshot/AnswerQueryAt. The invariant under test: every reader
// observes exactly one committed epoch's state — the per-relation digests
// of its pinned snapshot, and every query answer evaluated through it,
// equal what the writer recorded at the moment that epoch was published.
// No torn states, no half-applied integrations, no crashes, no races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "warehouse/channel.h"
#include "warehouse/ingest.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::S;
using ::dwc::testing::T;

constexpr int kReaderThreads = 4;
constexpr int kWriterSteps = 30;

// What the writer publishes per epoch: digests of every relation version in
// the epoch plus the digest of each oracle query's answer at that epoch.
struct EpochOracle {
  std::map<std::string, uint64_t> relation_digests;
  std::vector<uint64_t> query_digests;
};

class ConcurrentServingChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void BuildHarness(const FaultProfile& profile) {
    StarSchemaConfig config;
    config.customers = 10;
    config.suppliers = 5;
    config.parts = 12;
    config.locations = 3;
    config.orders = 30;
    config.sales = 60;
    config.seed = GetParam();
    Result<StarSchema> star = BuildStarSchema(config);
    DWC_ASSERT_OK(star);
    spec_ = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(star->catalog, star->views));
    source_ = std::make_unique<Source>(star->db, "star");
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
    // Readers hammer a small query pool; give the subplan cache a budget so
    // the (uid, version) keys get exercised across epochs, and let the
    // parallel kernels fan out under the readers.
    EvaluatorOptions options;
    options.cache_budget_tuples = 1 << 16;
    warehouse_->SetEvaluatorOptions(options);
    channel_ = std::make_unique<DeltaChannel>(profile);
    ingestor_ = std::make_unique<DeltaIngestor>(warehouse_.get(),
                                                source_.get(), channel_.get());
    // Record the oracle after *every* committed transition: one Receive()
    // can publish several epochs (buffered successors, recovery-ladder
    // corrections), and a reader may pin any of them.
    ingestor_->set_commit_hook([this](const CommitEvent&) {
      RecordOracle();
      return Status::Ok();
    });
    for (const char* text :
         {"FactSales", "select[quantity >= 3](FactSales)",
          "project[supp_region, quantity](FactSales)"}) {
      Result<ExprRef> query = ParseExpr(text);
      DWC_ASSERT_OK(query);
      queries_.push_back(std::move(query).value());
    }
    RecordOracle();  // Epoch 1: the loaded state.
  }

  // Writer-side: digest the just-published epoch. Runs on the writer thread
  // after every committed transition (and once at load), so by the time any
  // reader can pin epoch N, oracle[N] is either present or on its way —
  // readers wait for it.
  void RecordOracle() {
    SnapshotHandle snapshot = warehouse_->PinSnapshot();
    ASSERT_TRUE(snapshot.valid());
    EpochOracle oracle;
    for (const auto& [name, rel] : snapshot.relations()) {
      oracle.relation_digests[name] = RelationDigest(*rel);
    }
    for (const ExprRef& query : queries_) {
      Result<Relation> answer = warehouse_->AnswerQueryAt(snapshot, query);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      oracle.query_digests.push_back(RelationDigest(*answer));
    }
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle_[snapshot.epoch()] = std::move(oracle);
    oracle_cv_.notify_all();
  }

  // Blocks until the writer has recorded `epoch` (bounded, to fail rather
  // than hang if publication ever outran recording).
  bool WaitForOracle(uint64_t epoch, EpochOracle* out) {
    std::unique_lock<std::mutex> lock(oracle_mu_);
    bool ok = oracle_cv_.wait_for(lock, std::chrono::seconds(60), [&] {
      return oracle_.count(epoch) > 0;
    });
    if (ok) {
      *out = oracle_[epoch];
    }
    return ok;
  }

  // A deliberately rolled-back integration: non-canonical delta (inserts a
  // tuple already present) with validation on. Must fail before any
  // mutation and publish nothing.
  void AttemptDoomedIntegration() {
    Result<Relation> base = warehouse_->ReconstructBase("Sales");
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    ASSERT_FALSE(base->empty());
    CanonicalDelta bogus;
    bogus.relation = "Sales";
    bogus.inserts = Relation(base->schema());
    bogus.inserts.Insert(*base->tuples().begin());
    bogus.deletes = Relation(base->schema());
    uint64_t epoch_before = warehouse_->current_epoch();
    warehouse_->set_validate_deltas(true);
    EXPECT_EQ(warehouse_->Integrate(bogus).code(),
              StatusCode::kInvalidArgument);
    warehouse_->set_validate_deltas(false);
    EXPECT_EQ(warehouse_->current_epoch(), epoch_before)
        << "a failed integration published an epoch";
  }

  // The writer loop: random updates through the faulty channel, pumping and
  // reconciling, recording the oracle after every committed transition,
  // with doomed integrations sprinkled in.
  void WriterLoop() {
    Rng rng(GetParam() * 131 + 9);
    std::vector<std::string> updatable = {"Sales", "Orders", "Customer",
                                          "Supplier", "Part", "Location"};
    UpdateStreamOptions options;
    options.max_inserts = 3;
    options.max_deletes = 2;
    options.db_options.int_domain = 100000;
    for (int step = 0; step < kWriterSteps; ++step) {
      Result<UpdateOp> op = GenerateRandomUpdate(
          source_->db(), updatable[rng.Below(updatable.size())], &rng,
          options);
      ASSERT_TRUE(op.ok()) << op.status().ToString();
      Result<CanonicalDelta> delta = source_->Apply(*op);
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      channel_->Send(*delta);
      for (std::optional<CanonicalDelta> got = channel_->Poll(); got;
           got = channel_->Poll()) {
        Status received = ingestor_->Receive(*got);
        ASSERT_TRUE(received.ok()) << received.ToString();
      }
      if (step % 7 == 3) {
        AttemptDoomedIntegration();
      }
      if (step % 10 == 9) {
        Status drained = ingestor_->Drain();
        ASSERT_TRUE(drained.ok()) << drained.ToString();
      }
    }
    Status drained = ingestor_->Drain();
    ASSERT_TRUE(drained.ok()) << drained.ToString();
  }

  // One reader: pin, verify the pinned epoch against the oracle, release,
  // repeat until the writer finishes.
  void ReaderLoop(uint64_t reader_seed, std::atomic<uint64_t>* verified,
                  std::atomic<uint64_t>* shed_seen) {
    Rng rng(reader_seed);
    while (!done_.load(std::memory_order_acquire)) {
      SnapshotHandle snapshot = warehouse_->PinSnapshot();
      ASSERT_TRUE(snapshot.valid());
      EpochOracle oracle;
      ASSERT_TRUE(WaitForOracle(snapshot.epoch(), &oracle))
          << "oracle for epoch " << snapshot.epoch() << " never recorded";
      // Exactly one committed epoch's digests — every relation version.
      ASSERT_EQ(snapshot.relations().size(),
                oracle.relation_digests.size());
      for (const auto& [name, rel] : snapshot.relations()) {
        auto it = oracle.relation_digests.find(name);
        ASSERT_NE(it, oracle.relation_digests.end()) << name;
        ASSERT_EQ(RelationDigest(*rel), it->second)
            << "relation '" << name << "' at epoch " << snapshot.epoch()
            << " does not match the committed state";
      }
      // And every answer evaluated through the snapshot matches what the
      // writer computed when it published the epoch.
      size_t q = rng.Below(queries_.size());
      Result<Relation> answer =
          warehouse_->AnswerQueryAt(snapshot, queries_[q]);
      if (!answer.ok()) {
        // The lag bound may shed a slow reader; anything else is a bug.
        ASSERT_EQ(answer.status().code(), StatusCode::kAborted)
            << answer.status().ToString();
        shed_seen->fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ASSERT_EQ(RelationDigest(*answer), oracle.query_digests[q])
          << "query " << q << " at epoch " << snapshot.epoch();
      verified->fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RunChaos() {
    std::atomic<uint64_t> verified{0};
    std::atomic<uint64_t> shed_seen{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaderThreads);
    for (int r = 0; r < kReaderThreads; ++r) {
      readers.emplace_back([this, r, &verified, &shed_seen] {
        ReaderLoop(GetParam() * 977 + static_cast<uint64_t>(r), &verified,
                   &shed_seen);
      });
    }
    WriterLoop();
    done_.store(true, std::memory_order_release);
    for (std::thread& reader : readers) {
      reader.join();
    }
    // The storm must have actually verified snapshots, and the final state
    // must be exactly consistent with the source.
    EXPECT_GT(verified.load(), 0u);
    DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
    EpochStats stats = warehouse_->epoch_stats();
    EXPECT_EQ(stats.live_snapshots, 0u);
    EXPECT_EQ(stats.retired_epochs, 0u)
        << "all superseded epochs should be reclaimed once readers drop";
    EXPECT_EQ(stats.current_epoch, warehouse_->current_epoch());
  }

  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
  std::unique_ptr<DeltaChannel> channel_;
  std::unique_ptr<DeltaIngestor> ingestor_;
  std::vector<ExprRef> queries_;

  std::mutex oracle_mu_;
  std::condition_variable oracle_cv_;
  std::map<uint64_t, EpochOracle> oracle_;
  std::atomic<bool> done_{false};
};

TEST_P(ConcurrentServingChaosTest, CleanChannelStorm) {
  // Faultless transport: every commit is a plain incremental integration.
  // The storm stresses the in-place/copy-on-write decision itself — readers
  // arrive and leave while the writer commits back to back.
  FaultProfile profile;
  profile.seed = GetParam();
  BuildHarness(profile);
  RunChaos();
  EXPECT_EQ(source_->query_count(), 0u);
}

TEST_P(ConcurrentServingChaosTest, FaultyChannelStorm) {
  // Drops, duplicates, reordering and corruption force the recovery ladder
  // (retransmits, base resyncs, full rebuilds) to run *under* the readers:
  // every rung's state transition must publish atomically too.
  FaultProfile profile;
  profile.drop_rate = 0.1;
  profile.duplicate_rate = 0.1;
  profile.reorder_rate = 0.15;
  profile.corrupt_rate = 0.05;
  profile.seed = GetParam();
  BuildHarness(profile);
  RunChaos();
  EXPECT_EQ(source_->query_count(), ingestor_->stats().source_queries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentServingChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dwc
