// Warehouse checkpointing through the DSL: dump, reload, equivalence.

#include "warehouse/persistence.h"

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "workload/star_schema.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

TEST(PersistenceTest, Figure1RoundTrip) {
  ScriptContext context = MustRun(Figure1Script(/*with_constraints=*/true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Source source(context.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);

  // Mutate, then checkpoint.
  UpdateOp op{"Sale", {T({S("Computer"), S("Paula")})}, {}};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));

  Result<std::string> script = WarehouseToScript(*warehouse);
  DWC_ASSERT_OK(script);
  Result<RestoredWarehouse> restored = WarehouseFromScript(*script);
  DWC_ASSERT_OK(restored);

  // Same warehouse state, same base state, same inverses.
  EXPECT_TRUE(
      restored->warehouse->state().SameStateAs(warehouse->state()));
  EXPECT_TRUE(restored->source->db().SameStateAs(source.db()));
  DWC_ASSERT_OK(
      CheckConsistency(*restored->warehouse, restored->source->db()));

  // The restored warehouse keeps maintaining.
  UpdateOp more{"Emp", {T({S("Ada"), testing::I(36)})}, {}};
  Result<CanonicalDelta> d2 = restored->source->Apply(more);
  DWC_ASSERT_OK(d2);
  DWC_ASSERT_OK(restored->warehouse->Integrate(*d2));
  DWC_ASSERT_OK(
      CheckConsistency(*restored->warehouse, restored->source->db()));
}

TEST(PersistenceTest, SummariesSurviveCheckpoint) {
  ScriptContext context = MustRun(Figure1Script(true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, context.db);
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "SalesPerClerk";
  def.source = Expr::Base("Sold");
  def.group_by = {"clerk"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));

  Result<std::string> script = WarehouseToScript(*warehouse);
  DWC_ASSERT_OK(script);
  EXPECT_NE(script->find("SUMMARY SalesPerClerk"), std::string::npos);
  Result<RestoredWarehouse> restored = WarehouseFromScript(*script);
  DWC_ASSERT_OK(restored);
  const AggregateView* aggregate =
      restored->warehouse->FindAggregate("SalesPerClerk");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_TRUE(aggregate->materialized().SameContentAs(
      warehouse->FindAggregate("SalesPerClerk")->materialized()));
}

TEST(PersistenceTest, StarSchemaRoundTrip) {
  StarSchemaConfig config;
  config.customers = 10;
  config.suppliers = 5;
  config.parts = 12;
  config.locations = 3;
  config.orders = 30;
  config.sales = 80;
  Result<StarSchema> star = BuildStarSchema(config);
  DWC_ASSERT_OK(star);
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(star->catalog, star->views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, star->db);
  DWC_ASSERT_OK(warehouse);
  Result<std::string> script = WarehouseToScript(*warehouse);
  DWC_ASSERT_OK(script);
  Result<RestoredWarehouse> restored = WarehouseFromScript(*script);
  DWC_ASSERT_OK(restored);
  EXPECT_TRUE(restored->warehouse->state().SameStateAs(warehouse->state()));
}

TEST(PersistenceTest, CorruptScriptFailsCleanly) {
  EXPECT_FALSE(WarehouseFromScript("CREATE TABLE;").ok());
  EXPECT_FALSE(WarehouseFromScript("QUERY R;").ok());
  // A script with no views cannot define a warehouse, but is a clean error
  // only at spec time — empty view sets are legal for SpecifyWarehouse, so
  // this should actually succeed with an all-complement warehouse.
  Result<RestoredWarehouse> trivial =
      WarehouseFromScript("CREATE TABLE R(a INT);");
  DWC_EXPECT_OK(trivial);
}

TEST(JournalAccountingTest, BytesEntriesAndWatermarks) {
  DeltaJournal journal;
  EXPECT_EQ(journal.bytes(), 0u);
  EXPECT_FALSE(journal.has_sequenced());
  journal.AppendScript("DELTA a;\n", 1, 1);
  journal.AppendScript("DELTA b;\n", 1, 2);
  EXPECT_EQ(journal.bytes(), 18u);
  EXPECT_EQ(journal.entries(), 2u);
  ASSERT_TRUE(journal.has_sequenced());
  EXPECT_EQ(journal.first(), (JournalStamp{1, 1}));
  EXPECT_EQ(journal.last(), (JournalStamp{1, 2}));
  EXPECT_TRUE(journal.contiguous());
  // A NoteConsumed jump is an acknowledged skip, not a gap.
  journal.NoteConsumed(1, 7);
  EXPECT_TRUE(journal.contiguous());
  EXPECT_EQ(journal.last(), (JournalStamp{1, 7}));
  journal.AppendScript("DELTA c;\n", 1, 8);
  EXPECT_TRUE(journal.contiguous());
  // A new epoch restarts at sequence 1.
  journal.AppendScript("DELTA d;\n", 2, 1);
  EXPECT_TRUE(journal.contiguous());
  // ...but an *unacknowledged* jump is a gap.
  journal.AppendScript("DELTA e;\n", 2, 5);
  EXPECT_FALSE(journal.contiguous());
  journal.Clear();
  EXPECT_EQ(journal.bytes(), 0u);
  EXPECT_TRUE(journal.contiguous());
  EXPECT_FALSE(journal.has_sequenced());
}

TEST(JournalAccountingTest, PolicyTriggersOnEitherBound) {
  JournalPolicy policy;
  policy.max_bytes = 20;
  policy.max_records = 3;
  DeltaJournal journal;
  EXPECT_FALSE(policy.ShouldCheckpoint(journal));
  journal.AppendScript("0123456789", 1, 1);
  EXPECT_FALSE(policy.ShouldCheckpoint(journal));
  journal.AppendScript("0123456789", 1, 2);
  EXPECT_TRUE(policy.ShouldCheckpoint(journal));  // 20 bytes.
  DeltaJournal by_count;
  by_count.AppendScript("a", 1, 1);
  by_count.AppendScript("b", 1, 2);
  EXPECT_FALSE(policy.ShouldCheckpoint(by_count));
  by_count.AppendScript("c", 1, 3);
  EXPECT_TRUE(policy.ShouldCheckpoint(by_count));  // 3 records.
}

class JournalValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScriptContext context = MustRun(Figure1Script(/*with_constraints=*/true));
    auto spec = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(context.catalog, context.views));
    source_ = std::make_unique<Source>(context.db, "s1");
    Result<Warehouse> warehouse = Warehouse::Load(spec, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
    // Three sequenced deltas; checkpoint taken after the first, so the
    // stamp is (epoch 1, seq 1) and a continuing journal starts at seq 2.
    deltas_.push_back(MustApply({"Sale", {T({S("radio"), S("Mary")})}, {}}));
    DWC_ASSERT_OK(warehouse_->Integrate(deltas_[0]));
    Result<std::string> checkpoint = WarehouseToScript(*warehouse_);
    DWC_ASSERT_OK(checkpoint);
    checkpoint_ = *checkpoint;
    // Seq 2 touches Emp, seq 3 touches Sale: the per-relation digests stay
    // verifiable when seq 2 is (legitimately or not) absent from a replay.
    deltas_.push_back(MustApply({"Emp", {T({S("Nina"), testing::I(27)})}, {}}));
    deltas_.push_back(MustApply({"Sale", {T({S("camera"), S("Paula")})}, {}}));
  }

  CanonicalDelta MustApply(const UpdateOp& op) {
    Result<CanonicalDelta> delta = source_->Apply(op);
    EXPECT_TRUE(delta.ok()) << delta.status().ToString();
    return std::move(delta).value();
  }

  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
  std::vector<CanonicalDelta> deltas_;
  std::string checkpoint_;
  JournalStamp stamp_{1, 1};
};

TEST_F(JournalValidationTest, ContinuingJournalReplays) {
  DeltaJournal journal;
  journal.Append(deltas_[1]);
  journal.Append(deltas_[2]);
  Result<RestoredWarehouse> recovered =
      RecoverWarehouse(checkpoint_, journal, stamp_);
  DWC_ASSERT_OK(recovered);
}

TEST_F(JournalValidationTest, InternalGapIsRejected) {
  DeltaJournal journal;
  journal.Append(deltas_[0]);
  journal.Append(deltas_[2]);  // Sequence 3 right after 1: a lost record.
  Result<RestoredWarehouse> recovered = RecoverWarehouse(checkpoint_, journal);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(recovered.status().message().find("gap"), std::string::npos)
      << recovered.status().message();
}

TEST_F(JournalValidationTest, JournalNotContinuingTheStampIsRejected) {
  DeltaJournal journal;
  journal.Append(deltas_[2]);  // First record seq 3; checkpoint stamp seq 1.
  Result<RestoredWarehouse> recovered =
      RecoverWarehouse(checkpoint_, journal, stamp_);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(recovered.status().message().find("does not continue"),
            std::string::npos)
      << recovered.status().message();
  // Without the stamp the same journal replays (legacy overload: contiguity
  // within the journal only) — the stamp is what catches the lost prefix.
  DWC_EXPECT_OK(RecoverWarehouse(checkpoint_, journal));
}

TEST_F(JournalValidationTest, NoteFirstJournalMustLandPastTheStamp) {
  DeltaJournal stale;
  stale.NoteConsumed(1, 1);  // At the stamp — a replayed duplicate ack.
  Result<RestoredWarehouse> recovered =
      RecoverWarehouse(checkpoint_, stale, stamp_);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
  DeltaJournal jump;
  jump.NoteConsumed(1, 5);  // An acknowledged jump past the stamp is fine.
  DWC_EXPECT_OK(RecoverWarehouse(checkpoint_, jump, stamp_));
}

}  // namespace
}  // namespace dwc
