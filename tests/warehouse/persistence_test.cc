// Warehouse checkpointing through the DSL: dump, reload, equivalence.

#include "warehouse/persistence.h"

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "workload/star_schema.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

TEST(PersistenceTest, Figure1RoundTrip) {
  ScriptContext context = MustRun(Figure1Script(/*with_constraints=*/true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Source source(context.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);

  // Mutate, then checkpoint.
  UpdateOp op{"Sale", {T({S("Computer"), S("Paula")})}, {}};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));

  Result<std::string> script = WarehouseToScript(*warehouse);
  DWC_ASSERT_OK(script);
  Result<RestoredWarehouse> restored = WarehouseFromScript(*script);
  DWC_ASSERT_OK(restored);

  // Same warehouse state, same base state, same inverses.
  EXPECT_TRUE(
      restored->warehouse->state().SameStateAs(warehouse->state()));
  EXPECT_TRUE(restored->source->db().SameStateAs(source.db()));
  DWC_ASSERT_OK(
      CheckConsistency(*restored->warehouse, restored->source->db()));

  // The restored warehouse keeps maintaining.
  UpdateOp more{"Emp", {T({S("Ada"), testing::I(36)})}, {}};
  Result<CanonicalDelta> d2 = restored->source->Apply(more);
  DWC_ASSERT_OK(d2);
  DWC_ASSERT_OK(restored->warehouse->Integrate(*d2));
  DWC_ASSERT_OK(
      CheckConsistency(*restored->warehouse, restored->source->db()));
}

TEST(PersistenceTest, SummariesSurviveCheckpoint) {
  ScriptContext context = MustRun(Figure1Script(true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, context.db);
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "SalesPerClerk";
  def.source = Expr::Base("Sold");
  def.group_by = {"clerk"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));

  Result<std::string> script = WarehouseToScript(*warehouse);
  DWC_ASSERT_OK(script);
  EXPECT_NE(script->find("SUMMARY SalesPerClerk"), std::string::npos);
  Result<RestoredWarehouse> restored = WarehouseFromScript(*script);
  DWC_ASSERT_OK(restored);
  const AggregateView* aggregate =
      restored->warehouse->FindAggregate("SalesPerClerk");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_TRUE(aggregate->materialized().SameContentAs(
      warehouse->FindAggregate("SalesPerClerk")->materialized()));
}

TEST(PersistenceTest, StarSchemaRoundTrip) {
  StarSchemaConfig config;
  config.customers = 10;
  config.suppliers = 5;
  config.parts = 12;
  config.locations = 3;
  config.orders = 30;
  config.sales = 80;
  Result<StarSchema> star = BuildStarSchema(config);
  DWC_ASSERT_OK(star);
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(star->catalog, star->views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, star->db);
  DWC_ASSERT_OK(warehouse);
  Result<std::string> script = WarehouseToScript(*warehouse);
  DWC_ASSERT_OK(script);
  Result<RestoredWarehouse> restored = WarehouseFromScript(*script);
  DWC_ASSERT_OK(restored);
  EXPECT_TRUE(restored->warehouse->state().SameStateAs(warehouse->state()));
}

TEST(PersistenceTest, CorruptScriptFailsCleanly) {
  EXPECT_FALSE(WarehouseFromScript("CREATE TABLE;").ok());
  EXPECT_FALSE(WarehouseFromScript("QUERY R;").ok());
  // A script with no views cannot define a warehouse, but is a clean error
  // only at spec time — empty view sets are legal for SpecifyWarehouse, so
  // this should actually succeed with an all-complement warehouse.
  Result<RestoredWarehouse> trivial =
      WarehouseFromScript("CREATE TABLE R(a INT);");
  DWC_EXPECT_OK(trivial);
}

}  // namespace
}  // namespace dwc
