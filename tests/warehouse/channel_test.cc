// DeltaChannel: deterministic seeded fault injection on the delta transport
// — drops, duplicates, bounded reordering, corruption — plus the outbox
// retransmission the recovery ladder's first rung relies on.

#include "warehouse/channel.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/test_util.h"
#include "util/checksum.h"
#include "warehouse/source.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class ChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/false));
    source_ = std::make_unique<Source>(context_.db, "s1");
  }

  // Produces `n` stamped single-insert deltas on Emp.
  std::vector<CanonicalDelta> MakeDeltas(int n) {
    std::vector<CanonicalDelta> deltas;
    for (int i = 0; i < n; ++i) {
      UpdateOp op{"Emp", {T({S(("clerk" + std::to_string(i)).c_str()),
                             I(40 + i)})}, {}};
      Result<CanonicalDelta> delta = source_->Apply(op);
      EXPECT_TRUE(delta.ok()) << delta.status().ToString();
      deltas.push_back(std::move(delta).value());
    }
    return deltas;
  }

  ScriptContext context_;
  std::unique_ptr<Source> source_;
};

TEST_F(ChannelTest, FaultlessChannelDeliversInOrderIntact) {
  DeltaChannel channel;
  std::vector<CanonicalDelta> deltas = MakeDeltas(5);
  for (const CanonicalDelta& delta : deltas) {
    channel.Send(delta);
  }
  for (int i = 0; i < 5; ++i) {
    std::optional<CanonicalDelta> got = channel.Poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->sequence, deltas[static_cast<size_t>(i)].sequence);
    EXPECT_TRUE(DeltaPayloadIntact(*got));
  }
  EXPECT_FALSE(channel.Poll().has_value());
  EXPECT_TRUE(channel.drained());
  EXPECT_EQ(channel.stats().sent, 5u);
  EXPECT_EQ(channel.stats().delivered, 5u);
  EXPECT_EQ(channel.stats().dropped, 0u);
}

TEST_F(ChannelTest, EmptyAndUnsequencedDeltasAreNotSent) {
  DeltaChannel channel;
  CanonicalDelta empty;
  empty.relation = "Emp";
  channel.Send(empty);
  CanonicalDelta unsequenced;
  unsequenced.relation = "Emp";
  unsequenced.inserts = Relation(source_->db().FindRelation("Emp")->schema());
  unsequenced.inserts.Insert(T({S("Zoe"), I(30)}));
  channel.Send(unsequenced);
  EXPECT_EQ(channel.stats().sent, 0u);
  EXPECT_FALSE(channel.Poll().has_value());
}

TEST_F(ChannelTest, DropRateOneLosesEverythingSilently) {
  FaultProfile profile;
  profile.drop_rate = 1.0;
  profile.seed = 7;
  DeltaChannel channel(profile);
  for (const CanonicalDelta& delta : MakeDeltas(4)) {
    channel.Send(delta);
  }
  EXPECT_FALSE(channel.Poll().has_value());
  EXPECT_EQ(channel.stats().sent, 4u);
  EXPECT_EQ(channel.stats().dropped, 4u);
  EXPECT_EQ(channel.stats().delivered, 0u);
}

TEST_F(ChannelTest, DuplicateRateOneDeliversTwice) {
  FaultProfile profile;
  profile.duplicate_rate = 1.0;
  profile.seed = 7;
  DeltaChannel channel(profile);
  for (const CanonicalDelta& delta : MakeDeltas(3)) {
    channel.Send(delta);
  }
  size_t delivered = 0;
  while (channel.Poll().has_value()) {
    ++delivered;
  }
  EXPECT_EQ(delivered, 6u);
  EXPECT_EQ(channel.stats().duplicated, 3u);
}

TEST_F(ChannelTest, ReorderingIsBoundedByWindowAndLossless) {
  FaultProfile profile;
  profile.reorder_rate = 1.0;
  profile.reorder_window = 3;
  profile.seed = 11;
  DeltaChannel channel(profile);
  std::vector<CanonicalDelta> deltas = MakeDeltas(12);
  for (const CanonicalDelta& delta : deltas) {
    channel.Send(delta);
  }
  std::vector<uint64_t> order;
  for (std::optional<CanonicalDelta> got = channel.Poll(); got;
       got = channel.Poll()) {
    EXPECT_TRUE(DeltaPayloadIntact(*got));
    order.push_back(got->sequence);
  }
  ASSERT_EQ(order.size(), 12u);  // Nothing lost, nothing duplicated.
  bool out_of_order = false;
  for (size_t i = 0; i < order.size(); ++i) {
    // A delta overtakes at most reorder_window later sends.
    EXPECT_LE(deltas[0].sequence + i,
              order[i] + profile.reorder_window + 1);
    if (i > 0 && order[i] < order[i - 1]) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);
  EXPECT_GT(channel.stats().reordered, 0u);
}

TEST_F(ChannelTest, CorruptionIsAlwaysDetectableByChecksum) {
  FaultProfile profile;
  profile.corrupt_rate = 1.0;
  profile.seed = 13;
  DeltaChannel channel(profile);
  for (const CanonicalDelta& delta : MakeDeltas(8)) {
    channel.Send(delta);
  }
  size_t delivered = 0;
  for (std::optional<CanonicalDelta> got = channel.Poll(); got;
       got = channel.Poll()) {
    ++delivered;
    EXPECT_FALSE(DeltaPayloadIntact(*got))
        << "corrupted delivery slipped past the payload checksum";
  }
  EXPECT_EQ(delivered, 8u);
  EXPECT_EQ(channel.stats().corrupted, 8u);
}

TEST_F(ChannelTest, SameSeedSameFaultPattern) {
  FaultProfile profile;
  profile.drop_rate = 0.3;
  profile.duplicate_rate = 0.2;
  profile.reorder_rate = 0.2;
  profile.corrupt_rate = 0.2;
  profile.seed = 99;
  DeltaChannel a(profile), b(profile);
  std::vector<CanonicalDelta> deltas = MakeDeltas(20);
  for (const CanonicalDelta& delta : deltas) {
    a.Send(delta);
    b.Send(delta);
  }
  while (true) {
    std::optional<CanonicalDelta> from_a = a.Poll();
    std::optional<CanonicalDelta> from_b = b.Poll();
    ASSERT_EQ(from_a.has_value(), from_b.has_value());
    if (!from_a.has_value()) {
      break;
    }
    EXPECT_EQ(from_a->sequence, from_b->sequence);
    EXPECT_EQ(from_a->payload_digest, from_b->payload_digest);
    EXPECT_EQ(DeltaPayloadIntact(*from_a), DeltaPayloadIntact(*from_b));
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
}

TEST_F(ChannelTest, RetransmitServesFromPristineOutbox) {
  FaultProfile profile;
  profile.corrupt_rate = 0.5;
  profile.seed = 5;
  DeltaChannel channel(profile);
  std::vector<CanonicalDelta> deltas = MakeDeltas(2);
  for (const CanonicalDelta& delta : deltas) {
    channel.Send(delta);
  }
  // The outbox log holds the pristine originals; corruption is re-rolled
  // per delivery attempt, so retransmission eventually returns one intact.
  bool got_intact = false;
  for (int attempt = 0; attempt < 64 && !got_intact; ++attempt) {
    Result<CanonicalDelta> again =
        channel.Retransmit(deltas[0].epoch, deltas[0].sequence);
    DWC_ASSERT_OK(again);
    got_intact = DeltaPayloadIntact(*again) &&
                 again->sequence == deltas[0].sequence;
  }
  EXPECT_TRUE(got_intact);
  EXPECT_GT(channel.stats().retransmit_requests, 0u);
}

TEST_F(ChannelTest, RetransmitFailsAfterLogTruncation) {
  DeltaChannel channel;
  std::vector<CanonicalDelta> deltas = MakeDeltas(1);
  channel.Send(deltas[0]);
  DWC_ASSERT_OK(channel.Retransmit(deltas[0].epoch, deltas[0].sequence));
  channel.TruncateLog();
  Result<CanonicalDelta> gone =
      channel.Retransmit(deltas[0].epoch, deltas[0].sequence);
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_GT(channel.stats().retransmit_failures, 0u);
}

}  // namespace
}  // namespace dwc
