// Figure 1's multi-source architecture: autonomous sources each owning a
// subset of the base relations, one integrator, zero queries to any source.

#include "warehouse/federation.h"

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    DWC_ASSERT_OK(
        federation_.AddSource("SalesDB", context_.db, {"Sale"}));
    DWC_ASSERT_OK(
        federation_.AddSource("CompanyDB", context_.db, {"Emp"}));
  }

  ScriptContext context_;
  Federation federation_;
};

TEST_F(FederationTest, OwnershipIsExclusive) {
  EXPECT_EQ(federation_.AddSource("Dup", context_.db, {"Sale"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(
      federation_.AddSource("SalesDB", context_.db, {"Sale"}).code(),
      StatusCode::kAlreadyExists);
  EXPECT_EQ(federation_.AddSource("Ghost", context_.db, {"Nope"}).code(),
            StatusCode::kNotFound);
  EXPECT_NE(federation_.FindOwner("Sale"), nullptr);
  EXPECT_EQ(federation_.FindOwner("Sale"),
            federation_.FindMutableSource("SalesDB"));
  EXPECT_EQ(federation_.FindOwner("Unowned"), nullptr);
  EXPECT_EQ(federation_.FindSource("Nope"), nullptr);
}

TEST_F(FederationTest, RoutesUpdatesAndMaintainsWarehouse) {
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context_.catalog, context_.views));
  Result<Database> combined = federation_.CombinedState();
  DWC_ASSERT_OK(combined);
  Result<Warehouse> warehouse = Warehouse::Load(spec, *combined);
  DWC_ASSERT_OK(warehouse);

  // The paper's insertion arrives from the Sales database; an unrelated
  // hire arrives from the Company database.
  UpdateOp sale{"Sale", {T({S("Computer"), S("Paula")})}, {}};
  Result<CanonicalDelta> d1 = federation_.Apply(sale);
  DWC_ASSERT_OK(d1);
  DWC_ASSERT_OK(warehouse->Integrate(*d1));

  UpdateOp hire{"Emp", {T({S("Nina"), I(28)})}, {}};
  Result<CanonicalDelta> d2 = federation_.Apply(hire);
  DWC_ASSERT_OK(d2);
  DWC_ASSERT_OK(warehouse->Integrate(*d2));

  Result<Database> after = federation_.CombinedState();
  DWC_ASSERT_OK(after);
  DWC_ASSERT_OK(CheckConsistency(*warehouse, *after));
  EXPECT_EQ(federation_.TotalQueryCount(), 0u);
}

TEST_F(FederationTest, CrossSourceTransaction) {
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context_.catalog, context_.views));
  Result<Database> combined = federation_.CombinedState();
  DWC_ASSERT_OK(combined);
  Result<Warehouse> warehouse = Warehouse::Load(spec, *combined);
  DWC_ASSERT_OK(warehouse);

  // Hire Zoe at the Company database and record her sale at the Sales
  // database as one logical transaction spanning both sources.
  std::vector<UpdateOp> ops = {
      {"Emp", {T({S("Zoe"), I(33)})}, {}},
      {"Sale", {T({S("Laptop"), S("Zoe")})}, {}},
  };
  Result<std::vector<CanonicalDelta>> deltas =
      federation_.ApplyTransaction(ops);
  DWC_ASSERT_OK(deltas);
  ASSERT_EQ(deltas->size(), 2u);
  DWC_ASSERT_OK(warehouse->IntegrateTransaction(*deltas));

  Result<Database> after = federation_.CombinedState();
  DWC_ASSERT_OK(after);
  DWC_ASSERT_OK(CheckConsistency(*warehouse, *after));
  EXPECT_TRUE(warehouse->FindRelation("Sold")->Contains(
      T({S("Laptop"), S("Zoe"), I(33)})));
  EXPECT_EQ(federation_.TotalQueryCount(), 0u);
}

TEST_F(FederationTest, UnownedRelationRejected) {
  UpdateOp op{"Unowned", {}, {}};
  EXPECT_EQ(federation_.Apply(op).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(federation_.ApplyTransaction({op}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dwc
