// Warehouse::Integrate / IntegrateTransaction error paths: rejected deltas
// must leave the warehouse state (and its aggregates) exactly unchanged —
// validate-then-apply, not apply-then-notice.

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

class IntegrateErrorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(context_.catalog, context_.views);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
    source_ = std::make_unique<Source>(context_.db, "s1");
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
  }

  // Fingerprint of the full warehouse state, for exact no-change checks.
  uint64_t Fingerprint() const {
    return StateDigest(warehouse_->state()).Combined();
  }

  Relation EmpRelation(std::vector<Tuple> tuples) const {
    Relation rel(*spec_->catalog().FindSchema("Emp"));
    for (Tuple& tuple : tuples) {
      rel.Insert(std::move(tuple));
    }
    return rel;
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(IntegrateErrorsTest, UnknownRelationIsRejectedBeforeAnyWork) {
  uint64_t before = Fingerprint();
  CanonicalDelta delta;
  delta.relation = "Nope";
  delta.inserts = EmpRelation({T({S("Nina"), I(27)})});
  Status status = warehouse_->Integrate(delta);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(Fingerprint(), before);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
}

TEST_F(IntegrateErrorsTest, NonCanonicalInsertRejectedWhenValidating) {
  warehouse_->set_validate_deltas(true);
  uint64_t before = Fingerprint();
  CanonicalDelta delta;
  delta.relation = "Emp";
  // 'Mary' is already present: not a canonical insert.
  delta.inserts = EmpRelation({T({S("Mary"), I(23)})});
  Status status = warehouse_->Integrate(delta);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Fingerprint(), before);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
}

TEST_F(IntegrateErrorsTest, NonCanonicalDeleteRejectedWhenValidating) {
  warehouse_->set_validate_deltas(true);
  uint64_t before = Fingerprint();
  CanonicalDelta delta;
  delta.relation = "Emp";
  delta.deletes = EmpRelation({T({S("Ghost"), I(1)})});  // Not present.
  Status status = warehouse_->Integrate(delta);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Fingerprint(), before);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
}

TEST_F(IntegrateErrorsTest, ValidationIsOffByDefault) {
  // The canonicity check costs O(|base|) per refresh; trusted channels skip
  // it. (What a non-canonical delta then does to the state is the caller's
  // problem — this only documents that the check is opt-in.)
  EXPECT_FALSE(warehouse_->validate_deltas());
}

TEST_F(IntegrateErrorsTest, TransactionWithDuplicateRelationEntriesRejected) {
  uint64_t before = Fingerprint();
  CanonicalDelta first;
  first.relation = "Emp";
  first.inserts = EmpRelation({T({S("Nina"), I(27)})});
  CanonicalDelta second;
  second.relation = "Emp";
  second.inserts = EmpRelation({T({S("Omar"), I(31)})});
  Status status = warehouse_->IntegrateTransaction({first, second});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Fingerprint(), before);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
}

TEST_F(IntegrateErrorsTest, TransactionWithUnknownRelationRejected) {
  uint64_t before = Fingerprint();
  CanonicalDelta good;
  good.relation = "Emp";
  good.inserts = EmpRelation({T({S("Nina"), I(27)})});
  CanonicalDelta bad;
  bad.relation = "Nope";
  bad.inserts = EmpRelation({T({S("Omar"), I(31)})});
  Status status = warehouse_->IntegrateTransaction({good, bad});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(Fingerprint(), before);
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
}

TEST_F(IntegrateErrorsTest, EmptyTransactionIsANoOp) {
  uint64_t before = Fingerprint();
  DWC_ASSERT_OK(warehouse_->IntegrateTransaction({}));
  CanonicalDelta empty;
  empty.relation = "Emp";
  DWC_ASSERT_OK(warehouse_->IntegrateTransaction({empty}));
  EXPECT_EQ(Fingerprint(), before);
}

TEST_F(IntegrateErrorsTest, ReconstructBaseRoundTripsAndRejectsUnknown) {
  Result<Relation> emp = warehouse_->ReconstructBase("Emp");
  DWC_ASSERT_OK(emp);
  EXPECT_TRUE(
      testing::RelationsEqual(*emp, *source_->db().FindRelation("Emp")));
  EXPECT_EQ(warehouse_->ReconstructBase("Nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(IntegrateErrorsTest, ValidDeltaStillIntegratesUnderValidation) {
  warehouse_->set_validate_deltas(true);
  Result<CanonicalDelta> delta =
      source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse_->Integrate(*delta));
  DWC_ASSERT_OK(CheckConsistency(*warehouse_, source_->db()));
  EXPECT_EQ(source_->query_count(), 0u);
}

}  // namespace
}  // namespace dwc
