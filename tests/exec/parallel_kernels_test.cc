// Morsel-driven kernel tests: ParallelProduce / PartitionedIndex units,
// plus the evaluator-level determinism contract — every operator produces
// SameContentAs-identical results at thread counts {1, 2, 4, 8}, with the
// parallel_kernels counter proving the parallel paths actually engaged.
// Runs under TSan in CI (ctest -L dwc_tsan).

#include <gtest/gtest.h>

#include <vector>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "exec/kernels.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace dwc {
namespace {

using testing::I;
using testing::RelationsEqual;
using testing::S;
using testing::T;

Relation MakeWide(size_t n, uint64_t seed) {
  Relation rel(Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    rel.Insert(T({I(static_cast<int64_t>(i)), I(rng.Range(0, 999))}));
  }
  return rel;
}

// Forces the parallel path regardless of input size.
ExecOptions ForcedParallel(size_t threads) {
  ExecOptions options;
  options.num_threads = threads;
  options.min_parallel_tuples = 1;
  options.morsel_size = 64;
  return options;
}

TEST(ParallelProduceTest, MatchesSerialAcrossThreadCounts) {
  Relation in = MakeWide(2000, 3);
  std::vector<const Tuple*> snapshot = SnapshotTuples(in);
  auto produce = [&](MorselRange range, std::vector<Tuple>* out) -> Status {
    for (size_t i = range.begin; i < range.end; ++i) {
      if (snapshot[i]->at(1).AsInt() % 3 == 0) {
        out->push_back(*snapshot[i]);
      }
    }
    return Status::Ok();
  };
  Relation serial(in.schema());
  ExecOptions serial_options;
  serial_options.num_threads = 1;
  DWC_ASSERT_OK(
      ParallelProduce(snapshot.size(), serial_options, produce, &serial));
  for (size_t threads : {2u, 4u, 8u}) {
    Relation parallel(in.schema());
    DWC_ASSERT_OK(ParallelProduce(snapshot.size(), ForcedParallel(threads),
                                  produce, &parallel));
    EXPECT_TRUE(RelationsEqual(parallel, serial)) << threads << " threads";
  }
}

TEST(ParallelProduceTest, LowestMorselErrorWins) {
  ExecOptions options = ForcedParallel(4);
  options.morsel_size = 10;
  auto produce = [&](MorselRange range, std::vector<Tuple>*) -> Status {
    if (range.begin >= 50) {
      return Status::Internal(StrCat("morsel at ", range.begin));
    }
    return Status::Ok();
  };
  Relation out(Schema({{"k", ValueType::kInt}}));
  Status status = ParallelProduce(200, options, produce, &out);
  ASSERT_FALSE(status.ok());
  // Morsels at 50, 60, ... all fail; the lowest index must be reported
  // deterministically regardless of completion order.
  EXPECT_NE(status.ToString().find("morsel at 50"), std::string::npos)
      << status.ToString();
}

TEST(PartitionedIndexTest, FindsExactlyTheMatchingTuples) {
  Relation build = MakeWide(3000, 9);
  std::vector<const Tuple*> snapshot = SnapshotTuples(build);
  // Key on v (index 1): many duplicates across the 1000-value domain.
  PartitionedIndex index =
      PartitionedIndex::Build(snapshot, {1}, ForcedParallel(4));
  EXPECT_GT(index.partition_count(), 1u);
  // Cross-check against a scan for a sample of keys.
  for (int64_t key : {0, 1, 500, 998, 999}) {
    Tuple probe({I(key)});
    const std::vector<const Tuple*>* bucket = index.Find(probe);
    size_t expected = 0;
    for (const Tuple* t : snapshot) {
      if (t->at(1).AsInt() == key) {
        ++expected;
      }
    }
    size_t actual = bucket == nullptr ? 0 : bucket->size();
    EXPECT_EQ(actual, expected) << "key " << key;
  }
  EXPECT_EQ(index.Find(Tuple({I(12345)})), nullptr);
}

// The evaluator-level contract: identical results at every thread count.
class ParallelEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    left_ = MakeWide(6000, 1);
    right_ = Relation(
        Schema({{"v", ValueType::kInt}, {"name", ValueType::kString}}));
    for (int64_t v = 0; v < 1000; v += 2) {  // half the v-domain matches
      right_.Insert(T({I(v), S("x")}));
    }
    env_.Bind("L", &left_);
    env_.Bind("R", &right_);
  }

  // Materializes `expr` at the given thread count with tiny parallel
  // thresholds so every eligible operator takes the parallel path.
  Relation Eval(const ExprRef& expr, size_t threads, EvalStats* stats) {
    EvaluatorOptions options;
    options.num_threads = threads;
    options.min_parallel_tuples = 1;
    options.morsel_size = 64;
    Evaluator evaluator(&env_, options);
    Result<Relation> result = evaluator.Materialize(*expr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    *stats = evaluator.stats();
    return std::move(result).value();
  }

  void ExpectSameAtAllThreadCounts(const ExprRef& expr) {
    EvalStats serial_stats;
    Relation serial = Eval(expr, 1, &serial_stats);
    EXPECT_EQ(serial_stats.parallel_kernels, 0u);
    for (size_t threads : {2u, 4u, 8u}) {
      EvalStats stats;
      Relation parallel = Eval(expr, threads, &stats);
      EXPECT_TRUE(RelationsEqual(parallel, serial)) << threads << " threads";
      EXPECT_GT(stats.parallel_kernels, 0u) << threads << " threads";
    }
  }

  Relation left_{Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}})};
  Relation right_{Schema({{"v", ValueType::kInt}})};
  Environment env_;
};

TEST_F(ParallelEvaluatorTest, Select) {
  ExpectSameAtAllThreadCounts(Expr::Select(
      Predicate::Cmp(Operand::Attr("v"), CmpOp::kLt, Operand::Const(I(250))),
      Expr::Base("L")));
}

TEST_F(ParallelEvaluatorTest, Project) {
  ExpectSameAtAllThreadCounts(Expr::Project({"v"}, Expr::Base("L")));
}

TEST_F(ParallelEvaluatorTest, JoinAgainstBoundRelation) {
  // Build side is env-bound (stable): probes go through the cached index.
  ExpectSameAtAllThreadCounts(Expr::Join(Expr::Base("L"), Expr::Base("R")));
}

TEST_F(ParallelEvaluatorTest, JoinAgainstComputedRelation) {
  // Build side is an unstable intermediate: a transient partitioned index
  // is built in parallel.
  ExpectSameAtAllThreadCounts(Expr::Join(
      Expr::Base("L"),
      Expr::Select(Predicate::Cmp(Operand::Attr("v"), CmpOp::kLt,
                                  Operand::Const(I(700))),
                   Expr::Base("R"))));
}

TEST_F(ParallelEvaluatorTest, Difference) {
  ExpectSameAtAllThreadCounts(Expr::Difference(
      Expr::Project({"v"}, Expr::Base("L")),
      Expr::Select(Predicate::Cmp(Operand::Attr("v"), CmpOp::kGe,
                                  Operand::Const(I(500))),
                   Expr::Project({"v"}, Expr::Base("L")))));
}

TEST_F(ParallelEvaluatorTest, ComposedExpression) {
  // select o project o join o union: several kernels in one tree.
  ExprRef tree = Expr::Project(
      {"k", "v"},
      Expr::Select(
          Predicate::Cmp(Operand::Attr("v"), CmpOp::kGe, Operand::Const(I(8))),
          Expr::Join(Expr::Base("L"), Expr::Base("R"))));
  ExpectSameAtAllThreadCounts(tree);
}

TEST_F(ParallelEvaluatorTest, SerialBelowMinParallelTuples) {
  // Default thresholds: a 6000-tuple input at 4 threads parallelizes, but
  // only operators whose *input* crosses min_parallel_tuples do.
  EvaluatorOptions options;
  options.num_threads = 4;
  options.min_parallel_tuples = 1 << 20;
  Evaluator evaluator(&env_, options);
  Result<Relation> result =
      evaluator.Materialize(*Expr::Join(Expr::Base("L"), Expr::Base("R")));
  DWC_ASSERT_OK(result);
  EXPECT_EQ(evaluator.stats().parallel_kernels, 0u);
}

}  // namespace
}  // namespace dwc
