// ThreadPool / ParallelFor contract tests. These run under TSan in CI
// (ctest -L dwc_tsan): the assertions cover the scheduling contract, the
// sanitizer covers the memory model.

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace dwc {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);  // auto: hardware, >= 1
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (size_t n : {0u, 1u, 2u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) {
      h = 0;
    }
    pool.ParallelFor(n, /*max_threads=*/4,
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, MaxThreadsOneRunsInlineOnCaller) {
  ThreadPool pool(3);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.ParallelFor(64, /*max_threads=*/1, [&](size_t) {
    // No synchronization needed: serial contract means a single thread.
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPoolTest, ZeroWorkerPoolStillCompletes) {
  ThreadPool pool(0);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, /*max_threads=*/8,
                   [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A parallel refresh whose per-view evaluations run parallel kernels:
  // outer iterations issue inner ParallelFors against the same pool. The
  // cooperative design (callers always participate, never block on helper
  // startup) must drain this even with a single helper thread.
  ThreadPool pool(1);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, /*max_threads=*/4, [&](size_t) {
    pool.ParallelFor(32, /*max_threads=*/4,
                     [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 32u);
}

TEST(ThreadPoolTest, SharedPoolStress) {
  // Many back-to-back loops through the shared pool; under TSan this
  // exercises enqueue/dequeue/wakeup races.
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool::Shared().ParallelFor(64, /*max_threads=*/8,
                                     [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
}

}  // namespace
}  // namespace dwc
