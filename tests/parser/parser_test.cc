#include "parser/parser.h"

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> tokens =
      Tokenize("abc 42 -7 3.5 'it''s' ( ) [ ] , ; -> = != <> < <= > >=");
  DWC_ASSERT_OK(tokens);
  std::vector<TokenKind> kinds;
  for (const Token& token : *tokens) {
    kinds.push_back(token.kind);
  }
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kInt, TokenKind::kInt,
                TokenKind::kDouble, TokenKind::kString, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kComma,
                TokenKind::kSemicolon, TokenKind::kArrow, TokenKind::kEq,
                TokenKind::kNe, TokenKind::kNe, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[1].int_value, 42);
  EXPECT_EQ((*tokens)[2].int_value, -7);
  EXPECT_EQ((*tokens)[3].double_value, 3.5);
  EXPECT_EQ((*tokens)[4].text, "it's");
}

TEST(LexerTest, CommentsAndPositions) {
  Result<std::vector<Token>> tokens =
      Tokenize("a -- comment\n  b");
  DWC_ASSERT_OK(tokens);
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("1.2.3").ok());
}

TEST(ParseExprTest, Precedence) {
  // Binary operators are left-associative at one level.
  Result<ExprRef> e = ParseExpr("A join B union C minus D");
  DWC_ASSERT_OK(e);
  EXPECT_EQ((*e)->ToString(), "(((A join B) union C) minus D)");
  e = ParseExpr("A join (B union (C minus D))");
  DWC_ASSERT_OK(e);
  EXPECT_EQ((*e)->ToString(), "(A join (B union (C minus D)))");
}

TEST(ParseExprTest, AllTerms) {
  Result<ExprRef> e = ParseExpr(
      "project[a, b](select[a = 1 and b != 'x'](R JOIN S)) "
      "union rename[a -> c](empty[a INT])");
  DWC_ASSERT_OK(e);
  EXPECT_EQ((*e)->ToString(),
            "(project[a, b](select[(a = 1 and b != 'x')]((R join S))) union "
            "rename[a->c](empty[a]))");
}

TEST(ParseExprTest, PredicateGrammar) {
  Result<PredicateRef> p =
      ParsePredicate("not a = 1 and (b < 2.5 or c >= 'x') and true");
  DWC_ASSERT_OK(p);
  EXPECT_EQ((*p)->ToString(),
            "((not (a = 1) and (b < 2.5 or c >= 'x')) and true)");
}

TEST(ParseExprTest, Errors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("project[](R)").ok());
  EXPECT_FALSE(ParseExpr("select[a =](R)").ok());
  EXPECT_FALSE(ParseExpr("R join").ok());
  EXPECT_FALSE(ParseExpr("(R").ok());
  EXPECT_FALSE(ParseExpr("R S").ok());  // Trailing garbage.
  EXPECT_FALSE(ParseExpr("rename[a b](R)").ok());
}

TEST(ParseProgramTest, AllStatements) {
  Result<std::vector<Statement>> program = ParseProgram(R"(
-- a comment
CREATE TABLE R(a INT, b STRING, KEY(a));
INCLUSION S(a) SUBSETOF R(a);
VIEW V AS PROJECT[a](R);
INSERT INTO R VALUES (1, 'x'), (2, NULL);
DELETE FROM R VALUES (1, 'x');
QUERY R UNION R;
)");
  DWC_ASSERT_OK(program);
  ASSERT_EQ(program->size(), 6u);
  const auto* create = std::get_if<CreateTableStmt>(&(*program)[0]);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->name, "R");
  EXPECT_EQ(create->schema.ToString(), "(a INT, b STRING)");
  ASSERT_TRUE(create->key.has_value());
  EXPECT_EQ(*create->key, (AttrSet{"a"}));
  const auto* inclusion = std::get_if<InclusionStmt>(&(*program)[1]);
  ASSERT_NE(inclusion, nullptr);
  EXPECT_EQ(inclusion->ind.ToString(), "S(a) <= R(a)");
  const auto* insert = std::get_if<InsertStmt>(&(*program)[3]);
  ASSERT_NE(insert, nullptr);
  ASSERT_EQ(insert->tuples.size(), 2u);
  EXPECT_TRUE(insert->tuples[1].at(1).is_null());
}

TEST(ParseProgramTest, KeywordsCaseInsensitive) {
  Result<std::vector<Statement>> program =
      ParseProgram("create table R(a int); view v as r;");
  DWC_ASSERT_OK(program);
  // Identifiers keep their case.
  const auto* view = std::get_if<ViewStmt>(&(*program)[1]);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->expr->ToString(), "r");
}

TEST(ParseProgramTest, MissingSemicolonFails) {
  EXPECT_FALSE(ParseProgram("CREATE TABLE R(a INT)").ok());
}

TEST(InterpreterTest, RunScriptBuildsState) {
  ScriptContext context = testing::MustRun(R"(
CREATE TABLE R(a INT, b INT, KEY(a));
INSERT INTO R VALUES (1, 10), (2, 20);
DELETE FROM R VALUES (2, 20);
VIEW V AS SELECT[b >= 5](R);
QUERY PROJECT[a](V);
)");
  EXPECT_EQ(context.db.FindRelation("R")->size(), 1u);
  ASSERT_EQ(context.views.size(), 1u);
  ASSERT_EQ(context.query_results.size(), 1u);
  EXPECT_EQ(context.query_results[0].size(), 1u);
  DWC_ASSERT_OK(context.db.ValidateConstraints());
}

TEST(InterpreterTest, Errors) {
  EXPECT_FALSE(RunScript("INSERT INTO R VALUES (1);").ok());
  EXPECT_FALSE(RunScript("CREATE TABLE R(a INT); INSERT INTO R VALUES (1, 2);")
                   .ok());
  EXPECT_FALSE(
      RunScript("CREATE TABLE R(a INT); INSERT INTO R VALUES ('x');").ok());
  EXPECT_FALSE(RunScript("CREATE TABLE R(a INT); VIEW R AS R;").ok());
  EXPECT_FALSE(RunScript("CREATE TABLE R(a INT); VIEW V AS PROJECT[z](R);")
                   .ok());
  EXPECT_FALSE(RunScript("CREATE TABLE R(a INT); CREATE TABLE R(b INT);")
                   .ok());
}

TEST(InterpreterTest, IntWidensToDouble) {
  ScriptContext context = testing::MustRun(R"(
CREATE TABLE R(a DOUBLE);
INSERT INTO R VALUES (1), (2.5);
)");
  EXPECT_EQ(context.db.FindRelation("R")->size(), 2u);
}

}  // namespace
}  // namespace dwc
