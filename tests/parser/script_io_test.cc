// Round-trip tests for the DSL serializers: script -> objects -> script ->
// objects must reproduce catalogs, states, views and summaries exactly.

#include "parser/script_io.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/star_schema.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;
using ::dwc::testing::MustRun;

TEST(ScriptIoTest, ExprRoundTrip) {
  const char* exprs[] = {
      "R",
      "(R join S)",
      "((R union S) minus T)",
      "project[a, b](select[(a = 1 and b != 'x')](R))",
      "rename[a -> z](R)",
      "empty[a INT, b STRING]",
      "select[not (a < 2.5) or true](R)",
  };
  for (const char* text : exprs) {
    Result<ExprRef> parsed = ParseExpr(text);
    DWC_ASSERT_OK(parsed);
    std::string script = ExprToScript(**parsed);
    Result<ExprRef> reparsed = ParseExpr(script);
    DWC_ASSERT_OK(reparsed);
    EXPECT_TRUE((*reparsed)->Equals(**parsed))
        << text << " -> " << script << " -> " << (*reparsed)->ToString();
  }
}

TEST(ScriptIoTest, RandomExprRoundTrip) {
  Rng rng(4040);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  for (int i = 0; i < 50; ++i) {
    Result<ExprRef> expr = GenerateRandomQuery(*catalog, &rng);
    DWC_ASSERT_OK(expr);
    Result<ExprRef> reparsed = ParseExpr(ExprToScript(**expr));
    DWC_ASSERT_OK(reparsed);
    EXPECT_TRUE((*reparsed)->Equals(**expr)) << (*expr)->ToString();
  }
}

TEST(ScriptIoTest, CatalogAndDatabaseRoundTrip) {
  Result<StarSchema> star = BuildStarSchema({});
  DWC_ASSERT_OK(star);
  std::string script =
      CatalogToScript(*star->catalog) + DatabaseToScript(star->db);
  for (const ViewDef& view : star->views) {
    script += ViewToScript(view);
  }
  ScriptContext reloaded = MustRun(script);
  // Same relations, same constraints, same contents, same views.
  EXPECT_TRUE(reloaded.db.SameStateAs(star->db));
  EXPECT_EQ(reloaded.catalog->inclusions().size(),
            star->catalog->inclusions().size());
  ASSERT_EQ(reloaded.views.size(), star->views.size());
  for (size_t i = 0; i < star->views.size(); ++i) {
    EXPECT_EQ(reloaded.views[i].name, star->views[i].name);
    EXPECT_TRUE(reloaded.views[i].expr->Equals(*star->views[i].expr));
  }
  DWC_ASSERT_OK(reloaded.db.ValidateConstraints());
}

TEST(ScriptIoTest, RandomDatabaseRoundTrip) {
  Rng rng(4141);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kKeyedInds);
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  std::string script = CatalogToScript(*catalog) + DatabaseToScript(*db);
  ScriptContext reloaded = MustRun(script);
  EXPECT_TRUE(reloaded.db.SameStateAs(*db));
}

TEST(ScriptIoTest, SummaryRoundTrip) {
  AggregateViewDef def;
  def.name = "Tot";
  def.source = Expr::Base("V");
  def.group_by = {"g", "h"};
  def.aggregates = {{AggFunc::kCount, "", "n"},
                    {AggFunc::kSum, "v", "s"},
                    {AggFunc::kMin, "v", "lo"},
                    {AggFunc::kMax, "v", "hi"}};
  std::string script = SummaryToScript(def);
  Result<std::vector<Statement>> parsed = ParseProgram(script);
  DWC_ASSERT_OK(parsed);
  ASSERT_EQ(parsed->size(), 1u);
  const auto* stmt = std::get_if<SummaryStmt>(&(*parsed)[0]);
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->def.name, def.name);
  EXPECT_EQ(stmt->def.group_by, def.group_by);
  ASSERT_EQ(stmt->def.aggregates.size(), def.aggregates.size());
  for (size_t i = 0; i < def.aggregates.size(); ++i) {
    EXPECT_EQ(stmt->def.aggregates[i].func, def.aggregates[i].func);
    EXPECT_EQ(stmt->def.aggregates[i].attr, def.aggregates[i].attr);
    EXPECT_EQ(stmt->def.aggregates[i].out_name, def.aggregates[i].out_name);
  }
  EXPECT_TRUE(stmt->def.source->Equals(*def.source));
}

TEST(ScriptIoTest, SummaryParserValidation) {
  // Select items must match GROUP BY.
  EXPECT_FALSE(ParseProgram("SUMMARY S AS SELECT g, COUNT() AS n FROM V "
                            "GROUP BY h;")
                   .ok());
  // COUNT with attribute rejected at parse level (needs '()').
  EXPECT_FALSE(ParseProgram("SUMMARY S AS SELECT g, COUNT(v) AS n FROM V "
                            "GROUP BY g;")
                   .ok());
  // Interpreter validates against the source schema.
  EXPECT_FALSE(RunScript("CREATE TABLE R(g STRING, v STRING);\n"
                         "VIEW V AS R;\n"
                         "SUMMARY S AS SELECT g, SUM(v) AS s FROM V "
                         "GROUP BY g;\n")
                   .ok());
  ScriptContext ok = MustRun(
      "CREATE TABLE R(g STRING, v INT);\n"
      "VIEW V AS R;\n"
      "SUMMARY S AS SELECT g, SUM(v) AS s FROM V GROUP BY g;\n");
  ASSERT_EQ(ok.summaries.size(), 1u);
  EXPECT_EQ(ok.summaries[0].name, "S");
}

}  // namespace
}  // namespace dwc
