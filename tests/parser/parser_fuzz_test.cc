// Robustness: the lexer/parser/interpreter must never crash or accept
// garbage silently — every malformed input yields a clean Status. The
// "fuzz" is deterministic: random byte strings, random token shuffles of
// valid scripts, and truncations of valid scripts.

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "parser/interpreter.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace dwc {
namespace {

constexpr char kValidScript[] =
    "CREATE TABLE R(a INT, b STRING, KEY(a));\n"
    "INCLUSION S(a) SUBSETOF R(a);\n"
    "VIEW V AS PROJECT[a](SELECT[b = 'x'](R));\n"
    "INSERT INTO R VALUES (1, 'x'), (2, 'y');\n"
    "QUERY R UNION R;\n";

TEST(ParserFuzzTest, RandomByteStringsNeverCrash) {
  Rng rng(90210);
  const char alphabet[] =
      "abcXYZ019 \t\n()[],;=<>!'-*/.\"\\_#$%&";
  for (int round = 0; round < 500; ++round) {
    std::string input;
    size_t n = rng.Below(120);
    for (size_t i = 0; i < n; ++i) {
      input += alphabet[rng.Below(sizeof(alphabet) - 1)];
    }
    // Must terminate with either success or a clean error, never crash.
    Result<std::vector<Statement>> parsed = ParseProgram(input);
    if (parsed.ok()) {
      // Valid programs may execute or fail cleanly.
      (void)RunScript(input);
    }
  }
}

TEST(ParserFuzzTest, TruncationsOfValidScriptFailCleanly) {
  std::string script = kValidScript;
  for (size_t cut = 0; cut < script.size(); ++cut) {
    std::string prefix = script.substr(0, cut);
    Result<std::vector<Statement>> parsed = ParseProgram(prefix);
    if (parsed.ok()) {
      (void)RunScript(prefix);
    } else {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST(ParserFuzzTest, TokenDeletionsFailCleanlyOrParse) {
  // Remove one whitespace-delimited token at a time.
  std::vector<std::string> tokens;
  {
    std::string current;
    for (char c : std::string(kValidScript)) {
      if (c == ' ' || c == '\n') {
        if (!current.empty()) {
          tokens.push_back(current);
          current.clear();
        }
      } else {
        current += c;
      }
    }
    if (!current.empty()) {
      tokens.push_back(current);
    }
  }
  for (size_t skip = 0; skip < tokens.size(); ++skip) {
    std::string input;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i != skip) {
        input += tokens[i] + " ";
      }
    }
    Result<std::vector<Statement>> parsed = ParseProgram(input);
    if (parsed.ok()) {
      (void)RunScript(input);
    }
  }
}

TEST(ParserFuzzTest, ErrorsCarryPositions) {
  Result<std::vector<Statement>> parsed =
      ParseProgram("CREATE TABLE R(a INT);\nVIEW V AS ;;");
  ASSERT_FALSE(parsed.ok());
  // The message points at line 2.
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ParserFuzzTest, DeeplyNestedExpressionsParse) {
  // Recursive descent must handle reasonable nesting without issue.
  std::string expr = "R";
  for (int i = 0; i < 200; ++i) {
    expr = "project[a](" + expr + ")";
  }
  Result<ExprRef> parsed = ParseExpr(expr);
  DWC_EXPECT_OK(parsed);
}

}  // namespace
}  // namespace dwc
