#ifndef DWC_TESTS_TESTING_PROPERTY_UTIL_H_
#define DWC_TESTS_TESTING_PROPERTY_UTIL_H_

#include <memory>
#include <string>

#include "relational/catalog.h"

namespace dwc {
namespace testing {

// Catalog shapes used by the randomized property suites.
enum class CatalogShape {
  kChain,      // R(X,Y) - S(Y,Z) - T(Z,W); no constraints.
  kKeyed,      // Example 2.3's relations with keys, no INDs.
  kKeyedInds,  // Example 2.3's relations with keys and both INDs.
};

inline const char* CatalogShapeName(CatalogShape shape) {
  switch (shape) {
    case CatalogShape::kChain:
      return "Chain";
    case CatalogShape::kKeyed:
      return "Keyed";
    case CatalogShape::kKeyedInds:
      return "KeyedInds";
  }
  return "Unknown";
}

inline std::shared_ptr<Catalog> MakeCatalog(CatalogShape shape) {
  auto catalog = std::make_shared<Catalog>();
  auto add = [&](const std::string& name,
                 std::initializer_list<Attribute> attrs) {
    Status status =
        catalog->AddRelation(name, Schema(std::vector<Attribute>(attrs)));
    (void)status;
  };
  switch (shape) {
    case CatalogShape::kChain:
      add("R", {{"X", ValueType::kInt}, {"Y", ValueType::kInt}});
      add("S", {{"Y", ValueType::kInt}, {"Z", ValueType::kInt}});
      add("T", {{"Z", ValueType::kInt}, {"W", ValueType::kString}});
      break;
    case CatalogShape::kKeyed:
    case CatalogShape::kKeyedInds:
      add("R1", {{"A", ValueType::kInt},
                 {"B", ValueType::kInt},
                 {"C", ValueType::kInt}});
      add("R2", {{"A", ValueType::kInt},
                 {"C", ValueType::kInt},
                 {"D", ValueType::kString}});
      add("R3", {{"A", ValueType::kInt}, {"B", ValueType::kInt}});
      (void)catalog->AddKey("R1", {"A"});
      (void)catalog->AddKey("R2", {"A"});
      (void)catalog->AddKey("R3", {"A"});
      if (shape == CatalogShape::kKeyedInds) {
        (void)catalog->AddInclusion(
            InclusionDependency{"R3", {"A", "B"}, "R1", {"A", "B"}});
        (void)catalog->AddInclusion(
            InclusionDependency{"R2", {"A", "C"}, "R1", {"A", "C"}});
      }
      break;
  }
  return catalog;
}

}  // namespace testing
}  // namespace dwc

#endif  // DWC_TESTS_TESTING_PROPERTY_UTIL_H_
