#ifndef DWC_TESTS_TESTING_TEST_UTIL_H_
#define DWC_TESTS_TESTING_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "parser/interpreter.h"
#include "parser/parser.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace dwc {
namespace testing {

// Uniform error extraction for Status and Result<T>.
inline Status ToStatus(const Status& status) { return status; }
template <typename T>
Status ToStatus(const Result<T>& result) {
  return result.status();
}

}  // namespace testing
}  // namespace dwc

// ASSERT that a dwc::Status or dwc::Result is OK, printing the error.
#define DWC_ASSERT_OK(expr)                                             \
  do {                                                                  \
    const auto& dwc_assert_ok_tmp_ = (expr);                            \
    ASSERT_TRUE(dwc_assert_ok_tmp_.ok())                                \
        << ::dwc::testing::ToStatus(dwc_assert_ok_tmp_).ToString();     \
  } while (0)

#define DWC_EXPECT_OK(expr)                                             \
  do {                                                                  \
    const auto& dwc_expect_ok_tmp_ = (expr);                            \
    EXPECT_TRUE(dwc_expect_ok_tmp_.ok())                                \
        << ::dwc::testing::ToStatus(dwc_expect_ok_tmp_).ToString();     \
  } while (0)

namespace dwc {
namespace testing {

// Shorthand tuple builders.
inline Tuple T(std::initializer_list<Value> values) {
  return Tuple(std::vector<Value>(values));
}
inline Value I(int64_t v) { return Value::Int(v); }
inline Value S(const char* v) { return Value::String(v); }
inline Value D(double v) { return Value::Double(v); }

// Runs a DSL script, asserting success.
inline ScriptContext MustRun(const std::string& script) {
  Result<ScriptContext> context = RunScript(script);
  EXPECT_TRUE(context.ok()) << context.status().ToString();
  if (!context.ok()) {
    return ScriptContext();
  }
  return std::move(context).value();
}

// The running example of the paper (Figure 1 / Examples 1.1, 1.2, 2.4,
// 4.1): Sales and Company databases, warehouse view Sold = Sale |x| Emp.
// `with_constraints` adds the key clerk -> age and the referential
// integrity clerk(Sale) <= clerk(Emp) used from Example 2.4 onwards.
inline std::string Figure1Script(bool with_constraints) {
  std::string script;
  if (with_constraints) {
    script +=
        "CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));\n"
        "CREATE TABLE Sale(item STRING, clerk STRING);\n"
        "INCLUSION Sale(clerk) SUBSETOF Emp(clerk);\n";
  } else {
    script +=
        "CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));\n"
        "CREATE TABLE Sale(item STRING, clerk STRING);\n";
  }
  script +=
      "INSERT INTO Sale VALUES ('TV set', 'Mary'), ('VCR', 'Mary'), "
      "('PC', 'John');\n"
      "INSERT INTO Emp VALUES ('Mary', 23), ('John', 25), ('Paula', 32);\n"
      "VIEW Sold AS Sale JOIN Emp;\n";
  return script;
}

// Sorted-tuples equality with a readable failure message.
inline ::testing::AssertionResult RelationsEqual(const Relation& actual,
                                                 const Relation& expected) {
  if (actual.SameContentAs(expected)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "relations differ:\n  actual   " << actual.ToString()
         << "\n  expected " << expected.ToString();
}

}  // namespace testing
}  // namespace dwc

#endif  // DWC_TESTS_TESTING_TEST_UTIL_H_
