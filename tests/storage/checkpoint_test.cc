// Atomic checkpoints, the self-checksummed manifest, and the recovery path
// over them: bootstrap → log → crash → resume, plus the two damage
// acceptance cases — a bit-corrupted committed WAL record fails loudly with
// segment + offset, and a torn tail is truncated cleanly.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/warehouse_spec.h"
#include "storage/checkpoint.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

TEST(ManifestTest, SerializeParseRoundTrip) {
  Manifest manifest;
  manifest.checkpoint_id = 7;
  manifest.checkpoint_file = CheckpointFileName(7);
  manifest.checkpoint_crc = 0xDEADBEEF;
  manifest.stamp = {3, 41};
  manifest.wal_start = 12;
  Result<Manifest> parsed = Manifest::Parse(manifest.Serialize());
  DWC_ASSERT_OK(parsed);
  EXPECT_EQ(parsed->checkpoint_id, 7u);
  EXPECT_EQ(parsed->checkpoint_file, manifest.checkpoint_file);
  EXPECT_EQ(parsed->checkpoint_crc, 0xDEADBEEFu);
  EXPECT_EQ(parsed->stamp, (JournalStamp{3, 41}));
  EXPECT_EQ(parsed->wal_start, 12u);
}

TEST(ManifestTest, SelfChecksumCatchesAnyDamage) {
  Manifest manifest;
  manifest.checkpoint_file = CheckpointFileName(1);
  manifest.stamp = {1, 5};
  std::string text = manifest.Serialize();
  for (size_t at = 0; at < text.size() - 1; ++at) {
    std::string damaged = text;
    damaged[at] ^= 0x10;
    EXPECT_FALSE(Manifest::Parse(damaged).ok()) << "flip at byte " << at;
  }
  // Truncations (torn manifest writes) are caught too.
  for (size_t keep : {size_t{0}, size_t{5}, text.size() / 2,
                      text.size() - 3}) {
    EXPECT_FALSE(Manifest::Parse(text.substr(0, keep)).ok())
        << "truncated to " << keep;
  }
}

class StorageRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    spec_ = std::make_shared<WarehouseSpec>(
        *SpecifyWarehouse(context_.catalog, context_.views));
    source_ = std::make_unique<Source>(context_.db, "s1");
    Result<Warehouse> warehouse = Warehouse::Load(spec_, source_->db());
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
  }

  // Bootstraps storage for the freshly loaded warehouse.
  std::unique_ptr<DurableWarehouse> MustBootstrap(
      StorageOptions options = StorageOptions()) {
    Result<std::unique_ptr<DurableWarehouse>> durable = DurableWarehouse::
        Bootstrap(&vfs_, "wh", warehouse_.get(),
                  JournalStamp{source_->epoch(), source_->last_sequence()},
                  options);
    EXPECT_TRUE(durable.ok()) << durable.status().ToString();
    return std::move(durable).value();
  }

  // Applies `op` at the source and integrates it durably.
  void MustIntegrate(DurableWarehouse* durable, const UpdateOp& op) {
    Result<CanonicalDelta> delta = source_->Apply(op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(durable->Integrate(*delta, source_.get()));
  }

  static uint64_t Fingerprint(const Warehouse& warehouse) {
    return StateDigest(warehouse.state()).Combined();
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<Warehouse> warehouse_;
  FaultVfs vfs_;
};

TEST_F(StorageRecoveryTest, BootstrapThenResumeWithEmptyWal) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  const uint64_t fingerprint = Fingerprint(*warehouse_);
  vfs_.CrashAndLose();
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  DWC_ASSERT_OK(resumed);
  EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse), fingerprint);
  EXPECT_EQ(resumed->recovered.report.records_replayed, 0u);
  // Replay is pure log application: zero source queries.
  EXPECT_EQ(resumed->recovered.restored.source->query_count(), 0u);
}

TEST_F(StorageRecoveryTest, LoggedDeltasSurviveACrash) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  MustIntegrate(durable.get(), {"Emp", {T({S("Nina"), I(27)})}, {}});
  MustIntegrate(durable.get(), {"Sale", {T({S("radio"), S("Nina")})}, {}});
  MustIntegrate(durable.get(),
                {"Sale", {T({S("tv"), S("Nina")})},
                 {T({S("PC"), S("John")})}});
  const uint64_t fingerprint = Fingerprint(*warehouse_);
  const StorageStats stats = durable->stats();
  EXPECT_EQ(stats.wal_appends, 3u);
  EXPECT_GT(stats.wal_bytes, 0u);
  vfs_.CrashAndLose();
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  DWC_ASSERT_OK(resumed);
  EXPECT_EQ(resumed->recovered.report.records_replayed, 3u);
  EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse), fingerprint);
  EXPECT_EQ(resumed->recovered.restored.source->query_count(), 0u);
  EXPECT_EQ(resumed->durable->stats().last,
            (JournalStamp{source_->epoch(), source_->last_sequence()}));
  // The resumed instance keeps logging and checkpointing.
  Result<CanonicalDelta> more =
      source_->Apply({"Emp", {T({S("Omar"), I(31)})}, {}});
  DWC_ASSERT_OK(more);
  DWC_ASSERT_OK(resumed->durable->Integrate(*more, source_.get()));
  DWC_ASSERT_OK(resumed->durable->Checkpoint());
}

TEST_F(StorageRecoveryTest, PolicyCheckpointBoundsTheJournal) {
  StorageOptions options;
  options.policy.max_records = 2;
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap(options);
  MustIntegrate(durable.get(), {"Emp", {T({S("Nina"), I(27)})}, {}});
  MustIntegrate(durable.get(), {"Emp", {T({S("Omar"), I(31)})}, {}});
  MustIntegrate(durable.get(), {"Emp", {T({S("Pia"), I(29)})}, {}});
  const StorageStats stats = durable->stats();
  EXPECT_GE(stats.policy_checkpoints, 1u);
  EXPECT_LT(stats.journal_records, 2u);  // Policy kept the backlog bounded.
  // Recovery replays only the post-checkpoint suffix.
  const uint64_t fingerprint = Fingerprint(*warehouse_);
  vfs_.CrashAndLose();
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  DWC_ASSERT_OK(resumed);
  EXPECT_LT(resumed->recovered.report.records_replayed, 2u);
  EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse), fingerprint);
}

TEST_F(StorageRecoveryTest, CheckpointRotationSweepsOldSegmentsAndSnapshots) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  MustIntegrate(durable.get(), {"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(durable->Checkpoint());
  MustIntegrate(durable.get(), {"Emp", {T({S("Omar"), I(31)})}, {}});
  Result<std::vector<std::string>> names = vfs_.ListDir("wh");
  DWC_ASSERT_OK(names);
  // Exactly one checkpoint, one manifest, one live segment: old ones are
  // garbage-collected at each checkpoint commit.
  size_t checkpoints = 0;
  size_t segments = 0;
  for (const std::string& name : *names) {
    checkpoints += name.rfind("checkpoint-", 0) == 0;
    segments += name.rfind("wal-", 0) == 0;
  }
  EXPECT_EQ(checkpoints, 1u);
  EXPECT_EQ(segments, 1u);
  EXPECT_EQ(durable->stats().checkpoint_id, 2u);
  EXPECT_EQ(durable->stats().segment_id, 2u);
}

TEST_F(StorageRecoveryTest, TornWalTailIsTruncatedCleanly) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  MustIntegrate(durable.get(), {"Emp", {T({S("Nina"), I(27)})}, {}});
  const uint64_t fingerprint = Fingerprint(*warehouse_);
  // A torn write at the tail: half a frame that never finished committing.
  const std::string segment = JoinPath("wh", WalSegmentName(1));
  std::string frame = EncodeWalRecord(1, 2, "never committed");
  Result<std::unique_ptr<VfsFile>> file = vfs_.OpenAppend(segment);
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append(frame.substr(0, frame.size() / 2)));
  Result<uint64_t> dirty_size = vfs_.FileSize(segment);
  DWC_ASSERT_OK(dirty_size);
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  DWC_ASSERT_OK(resumed);
  EXPECT_TRUE(resumed->recovered.report.torn_tail);
  EXPECT_EQ(resumed->recovered.report.truncated_bytes, frame.size() / 2);
  EXPECT_EQ(resumed->recovered.report.records_replayed, 1u);
  EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse), fingerprint);
  // Repair actually cut the tail off disk.
  Result<uint64_t> clean_size = vfs_.FileSize(segment);
  DWC_ASSERT_OK(clean_size);
  EXPECT_EQ(*clean_size, *dirty_size - frame.size() / 2);
}

TEST_F(StorageRecoveryTest, BitCorruptedCommittedRecordFailsLoudly) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  MustIntegrate(durable.get(), {"Emp", {T({S("Nina"), I(27)})}, {}});
  MustIntegrate(durable.get(), {"Emp", {T({S("Omar"), I(31)})}, {}});
  // Bit rot inside the FIRST record's payload — committed history, with a
  // valid record after it. Recovery must refuse, naming segment + offset.
  const std::string segment = JoinPath("wh", WalSegmentName(1));
  DWC_ASSERT_OK(vfs_.FlipBit(segment, kWalMagicSize + kWalHeaderSize + 4, 2));
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find(WalSegmentName(1)),
            std::string::npos)
      << resumed.status().message();
  EXPECT_NE(resumed.status().message().find("offset"), std::string::npos)
      << resumed.status().message();
}

TEST_F(StorageRecoveryTest, CorruptedCheckpointSnapshotFailsItsCrc) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  Result<Manifest> manifest = ReadManifest(&vfs_, "wh");
  DWC_ASSERT_OK(manifest);
  DWC_ASSERT_OK(
      vfs_.FlipBit(JoinPath("wh", manifest->checkpoint_file), 40, 1));
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("checksum"), std::string::npos)
      << resumed.status().message();
}

TEST_F(StorageRecoveryTest, WalNotContinuingTheStampIsRejected) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  // Forge a WAL whose first record pretends to be sequence 2 while the
  // checkpoint stamp is sequence 0: sequence 1 was lost somewhere.
  Result<CanonicalDelta> skipped =
      source_->Apply({"Emp", {T({S("Nina"), I(27)})}, {}});
  DWC_ASSERT_OK(skipped);
  Result<CanonicalDelta> forged =
      source_->Apply({"Emp", {T({S("Omar"), I(31)})}, {}});
  DWC_ASSERT_OK(forged);
  DWC_ASSERT_OK(durable->Append(*forged));
  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs_, "wh");
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("does not continue"),
            std::string::npos)
      << resumed.status().message();
}

TEST_F(StorageRecoveryTest, InspectDescribesTheDirectory) {
  std::unique_ptr<DurableWarehouse> durable = MustBootstrap();
  MustIntegrate(durable.get(), {"Emp", {T({S("Nina"), I(27)})}, {}});
  RecoveryManager manager(&vfs_, "wh");
  Result<std::string> inspect = manager.Inspect();
  DWC_ASSERT_OK(inspect);
  EXPECT_NE(inspect->find("MANIFEST: ok"), std::string::npos) << *inspect;
  EXPECT_NE(inspect->find("checkpoint-"), std::string::npos) << *inspect;
  EXPECT_NE(inspect->find("1 record(s)"), std::string::npos) << *inspect;
  // Inspect stays usable (and non-failing) on damage — that is its job.
  DWC_ASSERT_OK(
      vfs_.FlipBit(JoinPath("wh", WalSegmentName(1)), kWalMagicSize + 1, 1));
  MustIntegrate(durable.get(), {"Emp", {T({S("Omar"), I(31)})}, {}});
  Result<std::string> damaged = manager.Inspect();
  DWC_ASSERT_OK(damaged);
  EXPECT_NE(damaged->find("CORRUPT"), std::string::npos) << *damaged;
}

}  // namespace
}  // namespace dwc
