// The crash matrix: a fixed ingest workload is run over FaultVfs with a
// crash injected at every mutating-I/O operation index, across many fault
// seeds. After each crash the directory is recovered with
// DurableWarehouse::Resume and checked against a digest oracle recorded by
// a clean reference run:
//
//   durability   — every acknowledged sequence survives the crash;
//   consistency  — the recovered state is byte-for-byte some committed
//                  prefix state (fingerprint matches the oracle), never a
//                  torn in-between;
//   independence — replay never queries the source.
//
// On failure the surviving disk is exported to $DWC_CRASH_DUMP_DIR for
// post-mortem with dwc_recover --inspect (CI uploads it as an artifact).

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/warehouse_spec.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "storage/wal.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/string_util.h"
#include "warehouse/channel.h"
#include "warehouse/ingest.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

// The same short stream crash_recovery_test uses (respects the inclusion
// Sale(clerk) <= Emp(clerk)); a forced checkpoint after the third delta
// puts the whole checkpoint protocol inside the crash sweep too.
std::vector<UpdateOp> Stream() {
  return {
      {"Emp", {T({S("Nina"), I(27)})}, {}},
      {"Sale", {T({S("radio"), S("Nina")})}, {}},
      {"Emp", {T({S("Omar"), I(31)})}, {}},
      {"Sale", {T({S("tv"), S("Omar")})}, {T({S("radio"), S("Nina")})}},
      {"Emp", {}, {T({S("Nina"), I(27)})}},
      {"Sale", {T({S("camera"), S("Omar")})}, {T({S("PC"), S("John")})}},
  };
}
constexpr size_t kCheckpointAfterOp = 3;

uint64_t Fingerprint(const Warehouse& warehouse) {
  return StateDigest(warehouse.state()).Combined();
}

struct RunResult {
  bool bootstrap_ok = false;  // The bootstrap checkpoint committed.
  bool crashed = false;       // The injected crash fired.
  uint64_t last_acked = 0;    // Highest sequence whose Drain() returned OK.
  uint64_t total_ops = 0;     // vfs op count at the end (clean runs only).
  Status failure;             // Any NON-injected failure: always a test bug.
};

// Runs the workload against `vfs` until completion or the injected crash.
// A clean run passes `digest_by_seq` to record the oracle: the warehouse
// fingerprint after every acknowledged sequence (and after bootstrap, keyed
// by sequence 0). The workload itself is deterministic and vfs-independent,
// so the oracle from one run applies to all of them.
RunResult RunWorkload(FaultVfs* vfs,
                      std::map<uint64_t, uint64_t>* digest_by_seq) {
  RunResult out;
  ScriptContext context = MustRun(Figure1Script(/*with_constraints=*/true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Source source(context.db, "s1");
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  if (!warehouse.ok()) {
    out.failure = warehouse.status();
    return out;
  }
  DeltaChannel channel;  // Faultless: storage faults are today's subject.
  DeltaIngestor ingestor(&warehouse.value(), &source, &channel);

  Result<std::unique_ptr<DurableWarehouse>> durable = DurableWarehouse::
      Bootstrap(vfs, "wh", &warehouse.value(),
                JournalStamp{source.epoch(), source.last_sequence()});
  if (!durable.ok()) {
    out.crashed = vfs->crashed();
    if (!out.crashed) out.failure = durable.status();
    return out;
  }
  out.bootstrap_ok = true;
  (*durable)->Attach(&ingestor);
  if (digest_by_seq != nullptr) {
    (*digest_by_seq)[source.last_sequence()] = Fingerprint(*warehouse);
  }

  size_t op_index = 0;
  for (const UpdateOp& op : Stream()) {
    Result<CanonicalDelta> delta = source.Apply(op);
    if (!delta.ok()) {
      out.failure = delta.status();
      return out;
    }
    channel.Send(*delta);
    Status status = ingestor.Drain();
    if (!status.ok()) {
      out.crashed = vfs->crashed();
      if (!out.crashed) out.failure = status;
      return out;
    }
    out.last_acked = source.last_sequence();
    if (digest_by_seq != nullptr) {
      (*digest_by_seq)[out.last_acked] = Fingerprint(*warehouse);
    }
    if (++op_index == kCheckpointAfterOp) {
      Status checkpointed = (*durable)->Checkpoint();
      if (!checkpointed.ok()) {
        out.crashed = vfs->crashed();
        if (!out.crashed) out.failure = checkpointed;
        return out;
      }
    }
  }
  out.total_ops = vfs->op_count();
  return out;
}

// Exports the post-crash disk for dwc_recover --inspect when the matrix
// fails and DWC_CRASH_DUMP_DIR is set (CI uploads it as an artifact).
void DumpFailingDisk(const FaultVfs& vfs, uint64_t seed, uint64_t crash_at) {
  const char* dump_dir = std::getenv("DWC_CRASH_DUMP_DIR");
  if (dump_dir == nullptr) {
    std::cerr << "set DWC_CRASH_DUMP_DIR to export the failing disk\n";
    return;
  }
  PosixVfs posix;
  Status made = posix.CreateDir(dump_dir);
  const std::string dst =
      JoinPath(dump_dir, StrCat("crash-seed", seed, "-op", crash_at));
  Status dumped = made.ok() ? vfs.DumpTo(&posix, "wh", dst) : made;
  if (dumped.ok()) {
    std::cerr << "failing post-crash disk exported to " << dst << "\n";
  } else {
    std::cerr << "disk export failed: " << dumped.ToString() << "\n";
  }
}

TEST(CrashMatrixTest, EveryCrashPointRecoversACommittedState) {
  std::map<uint64_t, uint64_t> digest_by_seq;
  uint64_t total_ops = 0;
  {
    FaultVfs vfs;
    RunResult clean = RunWorkload(&vfs, &digest_by_seq);
    ASSERT_TRUE(clean.failure.ok()) << clean.failure.ToString();
    ASSERT_FALSE(clean.crashed);
    ASSERT_EQ(clean.last_acked, Stream().size());
    total_ops = clean.total_ops;
  }
  ASSERT_GT(total_ops, 20u);  // The sweep has real coverage.

  size_t resumed_runs = 0;
  size_t unrecoverable_runs = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (uint64_t crash_at = 0; crash_at < total_ops; ++crash_at) {
      SCOPED_TRACE(StrCat("seed ", seed, ", crash at op ", crash_at));
      StorageFaultProfile profile;
      profile.seed = seed;
      FaultVfs vfs(profile);
      vfs.ScheduleCrashAtOp(crash_at);
      RunResult run = RunWorkload(&vfs, nullptr);
      ASSERT_TRUE(run.failure.ok()) << run.failure.ToString();
      ASSERT_TRUE(run.crashed);  // crash_at < total_ops always fires.
      vfs.CrashAndLose();

      Result<DurableWarehouse::Resumed> resumed =
          DurableWarehouse::Resume(&vfs, "wh");
      if (!resumed.ok()) {
        // Only legitimate before the bootstrap checkpoint ever committed —
        // there is nothing durable to recover yet, and nothing was acked.
        EXPECT_FALSE(run.bootstrap_ok) << resumed.status().ToString();
        EXPECT_EQ(run.last_acked, 0u);
        ++unrecoverable_runs;
      } else {
        ++resumed_runs;
        const JournalStamp resume = resumed->recovered.report.resume;
        // Durability: every acknowledged sequence survived.
        EXPECT_GE(resume.sequence, run.last_acked);
        // Consistency: the recovered state is exactly the committed state
        // at that sequence — never a torn hybrid.
        auto oracle = digest_by_seq.find(resume.sequence);
        ASSERT_NE(oracle, digest_by_seq.end())
            << "recovered to unknown sequence " << resume.sequence;
        EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse),
                  oracle->second);
        // Update independence: replay is pure log application.
        EXPECT_EQ(resumed->recovered.restored.source->query_count(), 0u);
      }
      if (::testing::Test::HasFailure()) {
        DumpFailingDisk(vfs, seed, crash_at);
        FAIL() << "stopping the sweep at the first failing crash point";
      }
    }
  }
  // The sweep exercised both regimes: recoverable crashes dominate, and the
  // earliest ops (before the first manifest commit) are the only
  // unrecoverable ones.
  EXPECT_GT(resumed_runs, unrecoverable_runs);
  EXPECT_GT(unrecoverable_runs, 0u);
}

// The damage corpus (the dwc_chaos side of the matrix): every seed's clean
// directory is damaged two ways and must classify each correctly —
// garbage appended past the committed tail truncates cleanly; bit rot
// inside committed history fails loudly naming the segment.
TEST(CrashMatrixTest, DamageCorpusClassifiesTornTailsAndRot) {
  std::map<uint64_t, uint64_t> digest_by_seq;
  {
    FaultVfs vfs;
    RunResult clean = RunWorkload(&vfs, &digest_by_seq);
    ASSERT_TRUE(clean.failure.ok()) << clean.failure.ToString();
  }
  const uint64_t final_seq = Stream().size();

  for (uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE(StrCat("seed ", seed));
    // Torn tail: garbage that never was a committed record.
    {
      StorageFaultProfile profile;
      profile.seed = seed;
      FaultVfs vfs(profile);
      RunResult run = RunWorkload(&vfs, nullptr);
      ASSERT_TRUE(run.failure.ok()) << run.failure.ToString();
      // The live segment is the highest-numbered one; smear 1..24 junk
      // bytes over its end (a header fragment, or a frame that can never
      // complete).
      const std::string segment = JoinPath("wh", WalSegmentName(2));
      const size_t junk = 1 + static_cast<size_t>(seed) * 3;
      Result<std::unique_ptr<VfsFile>> file = vfs.OpenAppend(segment);
      DWC_ASSERT_OK(file);
      DWC_ASSERT_OK((*file)->Append(std::string(junk, '\xFF')));
      Result<DurableWarehouse::Resumed> resumed =
          DurableWarehouse::Resume(&vfs, "wh");
      DWC_ASSERT_OK(resumed);
      EXPECT_TRUE(resumed->recovered.report.torn_tail);
      EXPECT_EQ(resumed->recovered.report.truncated_bytes, junk);
      EXPECT_EQ(resumed->recovered.report.resume.sequence, final_seq);
      EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse),
                digest_by_seq.at(final_seq));
    }
    // Bit rot inside a committed record with committed records after it.
    {
      StorageFaultProfile profile;
      profile.seed = seed;
      FaultVfs vfs(profile);
      RunResult run = RunWorkload(&vfs, nullptr);
      ASSERT_TRUE(run.failure.ok()) << run.failure.ToString();
      const std::string segment = JoinPath("wh", WalSegmentName(2));
      // Inside the first record's payload (the DELTA keyword region) —
      // never the length field, so the damage is unambiguously rot.
      DWC_ASSERT_OK(vfs.FlipBit(
          segment, kWalMagicSize + kWalHeaderSize + 1 + seed,
          static_cast<int>(seed % 8)));
      Result<DurableWarehouse::Resumed> resumed =
          DurableWarehouse::Resume(&vfs, "wh");
      ASSERT_FALSE(resumed.ok());
      EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
      EXPECT_NE(resumed.status().message().find(WalSegmentName(2)),
                std::string::npos)
          << resumed.status().message();
    }
  }
}

}  // namespace
}  // namespace dwc
