// The two Vfs backends: PosixVfs against a real temp directory, and
// FaultVfs's crash semantics — fsync'd bytes survive, pending bytes tear,
// un-synced directory entries survive probabilistically, scheduled crashes
// kill every subsequent I/O op.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "storage/fault_vfs.h"
#include "storage/vfs.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

// ---------- PosixVfs ----------

class PosixVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dwc_vfs_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + root_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  PosixVfs vfs_;
  std::string root_;
};

TEST_F(PosixVfsTest, CreateAppendReadRoundTrip) {
  const std::string path = JoinPath(root_, "a.txt");
  Result<std::unique_ptr<VfsFile>> file = vfs_.Create(path);
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("hello "));
  DWC_ASSERT_OK((*file)->Append("world"));
  DWC_ASSERT_OK((*file)->Sync());
  DWC_ASSERT_OK((*file)->Close());
  Result<std::string> content = vfs_.ReadFile(path);
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "hello world");
  Result<uint64_t> size = vfs_.FileSize(path);
  DWC_ASSERT_OK(size);
  EXPECT_EQ(*size, 11u);
}

TEST_F(PosixVfsTest, OpenAppendExtends) {
  const std::string path = JoinPath(root_, "a.txt");
  {
    Result<std::unique_ptr<VfsFile>> file = vfs_.Create(path);
    DWC_ASSERT_OK(file);
    DWC_ASSERT_OK((*file)->Append("one"));
    DWC_ASSERT_OK((*file)->Close());
  }
  {
    Result<std::unique_ptr<VfsFile>> file = vfs_.OpenAppend(path);
    DWC_ASSERT_OK(file);
    DWC_ASSERT_OK((*file)->Append("+two"));
    DWC_ASSERT_OK((*file)->Close());
  }
  Result<std::string> content = vfs_.ReadFile(path);
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "one+two");
}

TEST_F(PosixVfsTest, RenameRemoveListExistTruncate) {
  const std::string a = JoinPath(root_, "a");
  const std::string b = JoinPath(root_, "b");
  {
    Result<std::unique_ptr<VfsFile>> file = vfs_.Create(a);
    DWC_ASSERT_OK(file);
    DWC_ASSERT_OK((*file)->Append("0123456789"));
    DWC_ASSERT_OK((*file)->Close());
  }
  DWC_ASSERT_OK(vfs_.Rename(a, b));
  Result<bool> gone = vfs_.Exists(a);
  DWC_ASSERT_OK(gone);
  EXPECT_FALSE(*gone);
  DWC_ASSERT_OK(vfs_.Truncate(b, 4));
  Result<std::string> content = vfs_.ReadFile(b);
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "0123");
  Result<std::vector<std::string>> names = vfs_.ListDir(root_);
  DWC_ASSERT_OK(names);
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "b");
  DWC_ASSERT_OK(vfs_.Remove(b));
  names = vfs_.ListDir(root_);
  DWC_ASSERT_OK(names);
  EXPECT_TRUE(names->empty());
  DWC_ASSERT_OK(vfs_.SyncDir(root_));
}

TEST_F(PosixVfsTest, MissingFilesAreNotFound) {
  EXPECT_EQ(vfs_.ReadFile(JoinPath(root_, "nope")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(vfs_.OpenAppend(JoinPath(root_, "nope")).status().code(),
            StatusCode::kNotFound);
}

// ---------- FaultVfs ----------

TEST(FaultVfsTest, SyncedBytesSurviveACrashPendingBytesMayNot) {
  StorageFaultProfile profile;
  profile.seed = 7;
  profile.torn_tail_rate = 0.0;  // Pending bytes always vanish entirely.
  FaultVfs vfs(profile);
  DWC_ASSERT_OK(vfs.CreateDir("d"));
  Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("durable"));
  DWC_ASSERT_OK((*file)->Sync());
  DWC_ASSERT_OK(vfs.SyncDir("d"));
  DWC_ASSERT_OK((*file)->Append("-pending"));
  vfs.CrashAndLose();
  Result<std::string> content = vfs.ReadFile("d/f");
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "durable");
  // The pre-crash handle is stale now.
  EXPECT_EQ((*file)->Append("x").code(), StatusCode::kFailedPrecondition);
}

TEST(FaultVfsTest, UnsyncedDirectoryEntryVanishesWhenMetaNeverSurvives) {
  StorageFaultProfile profile;
  profile.meta_survival_rate = 0.0;
  FaultVfs vfs(profile);
  DWC_ASSERT_OK(vfs.CreateDir("d"));
  Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("x"));
  DWC_ASSERT_OK((*file)->Sync());  // Bytes synced, directory entry is not.
  vfs.CrashAndLose();
  EXPECT_EQ(vfs.ReadFile("d/f").status().code(), StatusCode::kNotFound);
  EXPECT_GE(vfs.dropped_meta_ops(), 1u);
}

TEST(FaultVfsTest, SyncDirMakesTheEntryCrashProof) {
  StorageFaultProfile profile;
  profile.meta_survival_rate = 0.0;
  FaultVfs vfs(profile);
  DWC_ASSERT_OK(vfs.CreateDir("d"));
  Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("x"));
  DWC_ASSERT_OK((*file)->Sync());
  DWC_ASSERT_OK(vfs.SyncDir("d"));
  vfs.CrashAndLose();
  Result<std::string> content = vfs.ReadFile("d/f");
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "x");
}

TEST(FaultVfsTest, TornTailsActuallyOccurAcrossSeeds) {
  bool saw_torn = false;
  bool saw_clean_loss = false;
  for (uint64_t seed = 0; seed < 32 && !(saw_torn && saw_clean_loss);
       ++seed) {
    StorageFaultProfile profile;
    profile.seed = seed;
    profile.torn_tail_rate = 0.5;
    profile.tail_garbage_rate = 0.0;
    FaultVfs vfs(profile);
    DWC_ASSERT_OK(vfs.CreateDir("d"));
    Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");
    DWC_ASSERT_OK(file);
    DWC_ASSERT_OK((*file)->Append("base"));
    DWC_ASSERT_OK((*file)->Sync());
    DWC_ASSERT_OK(vfs.SyncDir("d"));
    DWC_ASSERT_OK((*file)->Append("pending-tail-data"));
    vfs.CrashAndLose();
    Result<std::string> content = vfs.ReadFile("d/f");
    DWC_ASSERT_OK(content);
    ASSERT_GE(content->size(), 4u);
    EXPECT_EQ(content->substr(0, 4), "base");
    if (content->size() > 4) {
      saw_torn = true;
      // The torn tail is a strict prefix of what was appended.
      EXPECT_EQ(*content,
                std::string("base") +
                    std::string("pending-tail-data")
                        .substr(0, content->size() - 4));
    } else {
      saw_clean_loss = true;
    }
  }
  EXPECT_TRUE(saw_torn);
  EXPECT_TRUE(saw_clean_loss);
}

TEST(FaultVfsTest, ScheduledCrashKillsTheExactOpAndEverythingAfter) {
  FaultVfs vfs;
  DWC_ASSERT_OK(vfs.CreateDir("d"));
  const uint64_t before = vfs.op_count();
  vfs.ScheduleCrashAtOp(before + 1);
  Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");  // op `before`
  DWC_ASSERT_OK(file);
  Status died = (*file)->Append("x");  // op `before + 1`: the crash.
  EXPECT_EQ(died.code(), StatusCode::kInternal);
  EXPECT_TRUE(vfs.crashed());
  // The process is dead: every further op fails too.
  EXPECT_EQ(vfs.CreateDir("d2").code(), StatusCode::kInternal);
  vfs.CrashAndLose();
  EXPECT_FALSE(vfs.crashed());
  DWC_ASSERT_OK(vfs.CreateDir("d2"));
}

TEST(FaultVfsTest, FlipBitCorruptsInPlace) {
  FaultVfs vfs;
  DWC_ASSERT_OK(vfs.CreateDir("d"));
  Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("abc"));
  DWC_ASSERT_OK(vfs.FlipBit("d/f", 1, 0));
  Result<std::string> content = vfs.ReadFile("d/f");
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "acc");  // 'b' ^ 1 == 'c'.
  EXPECT_EQ(vfs.FlipBit("d/f", 99, 0).code(), StatusCode::kOutOfRange);
}

TEST(FaultVfsTest, DumpToExportsTheLiveTree) {
  FaultVfs vfs;
  DWC_ASSERT_OK(vfs.CreateDir("d"));
  Result<std::unique_ptr<VfsFile>> file = vfs.Create("d/f");
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("payload"));
  FaultVfs target;
  DWC_ASSERT_OK(vfs.DumpTo(&target, "d", "out"));
  Result<std::string> content = target.ReadFile("out/f");
  DWC_ASSERT_OK(content);
  EXPECT_EQ(*content, "payload");
}

}  // namespace
}  // namespace dwc
