// WAL framing: CRC-framed length-prefixed records, segment rotation, and —
// the acceptance-critical part — damage classification: a torn tail (data
// that never finished committing) truncates cleanly, while mid-log
// corruption (committed history that rotted) fails loudly with the segment
// and byte offset.

#include <gtest/gtest.h>

#include <string>

#include "storage/fault_vfs.h"
#include "storage/wal.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { DWC_ASSERT_OK(vfs_.CreateDir("d")); }

  std::unique_ptr<WalWriter> MustOpen(uint64_t segment_id,
                                      uint64_t existing_bytes,
                                      WalWriterOptions options =
                                          WalWriterOptions()) {
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(&vfs_, "d", segment_id, existing_bytes, options);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    return std::move(writer).value();
  }

  FaultVfs vfs_;
};

TEST_F(WalTest, AppendScanRoundTrip) {
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
  DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  DWC_ASSERT_OK(writer->Append(1, 2, "DELTA two;"));
  DWC_ASSERT_OK(writer->Append(1, 3, ""));  // Skip record.
  Result<WalSegmentScan> scan =
      ScanWalSegment(&vfs_, JoinPath("d", WalSegmentName(1)));
  DWC_ASSERT_OK(scan);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->truncated_bytes, 0u);
  EXPECT_EQ(scan->records[0].payload, "DELTA one;");
  EXPECT_EQ(scan->records[0].epoch, 1u);
  EXPECT_EQ(scan->records[0].sequence, 1u);
  EXPECT_EQ(scan->records[1].sequence, 2u);
  EXPECT_TRUE(scan->records[2].is_skip());
  EXPECT_EQ(scan->records[2].sequence, 3u);
}

TEST_F(WalTest, RotationStartsAFreshSegmentOverTheSizeBudget) {
  WalWriterOptions options;
  options.segment_max_bytes = 64;  // Tiny: force rotation quickly.
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0, options);
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    DWC_ASSERT_OK(writer->Append(1, seq, "DELTA payload padding........;"));
  }
  EXPECT_GT(writer->segment_id(), 1u);
  EXPECT_GT(writer->segments_rotated(), 0u);
  // Every record is recoverable across the chain, in order.
  uint64_t expect_seq = 1;
  for (uint64_t id = 1; id <= writer->segment_id(); ++id) {
    Result<WalSegmentScan> scan =
        ScanWalSegment(&vfs_, JoinPath("d", WalSegmentName(id)));
    DWC_ASSERT_OK(scan);
    EXPECT_FALSE(scan->torn_tail);
    for (const WalRecord& record : scan->records) {
      EXPECT_EQ(record.sequence, expect_seq++);
    }
  }
  EXPECT_EQ(expect_seq, 9u);
}

TEST_F(WalTest, TornHeaderAtEofTruncatesCleanly) {
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
  DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  const std::string path = JoinPath("d", WalSegmentName(1));
  // A torn write: only 5 bytes of the next record's header made it down.
  Result<std::unique_ptr<VfsFile>> file = vfs_.OpenAppend(path);
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append("\x01\x02\x03\x04\x05"));
  Result<WalSegmentScan> scan = ScanWalSegment(&vfs_, path);
  DWC_ASSERT_OK(scan);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->truncated_bytes, 5u);
}

TEST_F(WalTest, TornPayloadAtEofTruncatesCleanly) {
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
  DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  const std::string path = JoinPath("d", WalSegmentName(1));
  // A whole header claiming 100 payload bytes, followed by only 3.
  std::string frame = EncodeWalRecord(1, 2, std::string(100, 'x'));
  Result<std::unique_ptr<VfsFile>> file = vfs_.OpenAppend(path);
  DWC_ASSERT_OK(file);
  DWC_ASSERT_OK((*file)->Append(frame.substr(0, kWalHeaderSize + 3)));
  Result<WalSegmentScan> scan = ScanWalSegment(&vfs_, path);
  DWC_ASSERT_OK(scan);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->truncated_bytes, kWalHeaderSize + 3u);
}

TEST_F(WalTest, CorruptFinalRecordIsATornTail) {
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
  DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  DWC_ASSERT_OK(writer->Append(1, 2, "DELTA two;"));
  const std::string path = JoinPath("d", WalSegmentName(1));
  Result<uint64_t> size = vfs_.FileSize(path);
  DWC_ASSERT_OK(size);
  // Flip a payload bit of the *last* record: nothing durable follows it, so
  // it is indistinguishable from a tear and must truncate, not fail.
  DWC_ASSERT_OK(vfs_.FlipBit(path, *size - 2, 3));
  Result<WalSegmentScan> scan = ScanWalSegment(&vfs_, path);
  DWC_ASSERT_OK(scan);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].sequence, 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_GT(scan->truncated_bytes, 0u);
}

TEST_F(WalTest, MidLogCorruptionFailsLoudlyWithTheOffset) {
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
  DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  DWC_ASSERT_OK(writer->Append(1, 2, "DELTA two;"));
  const std::string path = JoinPath("d", WalSegmentName(1));
  // Flip a bit inside the FIRST record's payload: a later record still
  // checksums, so this is rot in committed history — refuse to recover.
  DWC_ASSERT_OK(vfs_.FlipBit(path, kWalMagicSize + kWalHeaderSize + 2, 1));
  Result<WalSegmentScan> scan = ScanWalSegment(&vfs_, path);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kFailedPrecondition);
  // The error names the segment and the exact frame offset.
  EXPECT_NE(scan.status().message().find(WalSegmentName(1)),
            std::string::npos)
      << scan.status().message();
  EXPECT_NE(scan.status().message().find("offset 8"), std::string::npos)
      << scan.status().message();
}

TEST_F(WalTest, CorruptMagicPreambleIsRejected) {
  std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
  DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  const std::string path = JoinPath("d", WalSegmentName(1));
  DWC_ASSERT_OK(vfs_.FlipBit(path, 2, 5));
  Result<WalSegmentScan> scan = ScanWalSegment(&vfs_, path);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WalTest, ReopeningAtTheCleanLengthResumesAppending) {
  {
    std::unique_ptr<WalWriter> writer = MustOpen(1, 0);
    DWC_ASSERT_OK(writer->Append(1, 1, "DELTA one;"));
  }
  const std::string path = JoinPath("d", WalSegmentName(1));
  Result<WalSegmentScan> first = ScanWalSegment(&vfs_, path);
  DWC_ASSERT_OK(first);
  {
    std::unique_ptr<WalWriter> writer = MustOpen(1, first->valid_bytes);
    DWC_ASSERT_OK(writer->Append(1, 2, "DELTA two;"));
  }
  Result<WalSegmentScan> scan = ScanWalSegment(&vfs_, path);
  DWC_ASSERT_OK(scan);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[1].sequence, 2u);
}

}  // namespace
}  // namespace dwc
