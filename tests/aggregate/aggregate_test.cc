// Section 5 OLAP layer: summary tables over warehouse fact views,
// maintained incrementally from exact source deltas. Differentially tested
// against from-scratch re-aggregation across random update streams.

#include "aggregate/aggregate_view.h"

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::D;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::S;
using ::dwc::testing::T;

// --- Unit-level tests against a tiny hand-checked relation.

class AggregateUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel_ = Relation(Schema({{"g", ValueType::kString},
                            {"v", ValueType::kInt}}));
    rel_.Insert(T({S("a"), I(1)}));
    rel_.Insert(T({S("a"), I(5)}));
    rel_.Insert(T({S("b"), I(7)}));
    env_.Bind("F", &rel_);
    AggregateViewDef def;
    def.name = "Agg";
    def.source = Expr::Base("F");
    def.group_by = {"g"};
    def.aggregates = {{AggFunc::kCount, "", "n"},
                      {AggFunc::kSum, "v", "total"},
                      {AggFunc::kMin, "v", "lo"},
                      {AggFunc::kMax, "v", "hi"}};
    SchemaResolver resolver = [this](const std::string& name) {
      return name == "F" ? &rel_.schema() : nullptr;
    };
    Result<AggregateView> view = AggregateView::Create(def, resolver);
    DWC_ASSERT_OK(view);
    view_ = std::make_unique<AggregateView>(std::move(view).value());
    DWC_ASSERT_OK(view_->Initialize(env_));
  }

  // Applies (plus, minus) to both the base relation and the view.
  void Apply(std::vector<Tuple> plus, std::vector<Tuple> minus) {
    Relation plus_rel(rel_.schema());
    Relation minus_rel(rel_.schema());
    for (Tuple& tuple : minus) {
      EXPECT_TRUE(rel_.Erase(tuple));
      minus_rel.Insert(std::move(tuple));
    }
    for (Tuple& tuple : plus) {
      EXPECT_TRUE(rel_.Insert(tuple));
      plus_rel.Insert(std::move(tuple));
    }
    DWC_ASSERT_OK(view_->ApplyDelta(plus_rel, minus_rel, env_));
  }

  Tuple Row(const char* group) {
    const Relation::Index& index = view_->materialized().GetIndex({"g"});
    auto it = index.find(T({S(group)}));
    EXPECT_NE(it, index.end()) << "no group " << group;
    return *it->second.front();
  }

  Relation rel_{Schema(std::vector<Attribute>{})};
  Environment env_;
  std::unique_ptr<AggregateView> view_;
};

TEST_F(AggregateUnitTest, InitializeFoldsAllGroups) {
  EXPECT_EQ(view_->schema().ToString(),
            "(g STRING, n INT, total INT, lo INT, hi INT)");
  EXPECT_EQ(view_->materialized().size(), 2u);
  EXPECT_EQ(Row("a"), T({S("a"), I(2), I(6), I(1), I(5)}));
  EXPECT_EQ(Row("b"), T({S("b"), I(1), I(7), I(7), I(7)}));
}

TEST_F(AggregateUnitTest, InsertUpdatesAllAggregates) {
  Apply({T({S("a"), I(10)})}, {});
  EXPECT_EQ(Row("a"), T({S("a"), I(3), I(16), I(1), I(10)}));
}

TEST_F(AggregateUnitTest, NewGroupAppears) {
  Apply({T({S("c"), I(-2)})}, {});
  EXPECT_EQ(view_->materialized().size(), 3u);
  EXPECT_EQ(Row("c"), T({S("c"), I(1), I(-2), I(-2), I(-2)}));
}

TEST_F(AggregateUnitTest, DeleteOfNonExtremumIsLocal) {
  Apply({T({S("a"), I(3)})}, {});           // a: {1,3,5}
  Apply({}, {T({S("a"), I(3)})});           // back to {1,5}
  EXPECT_EQ(Row("a"), T({S("a"), I(2), I(6), I(1), I(5)}));
}

TEST_F(AggregateUnitTest, DeleteOfExtremumRecomputesGroup) {
  Apply({}, {T({S("a"), I(5)})});           // max deleted
  EXPECT_EQ(Row("a"), T({S("a"), I(1), I(1), I(1), I(1)}));
  Apply({}, {T({S("a"), I(1)})});           // group vanishes
  EXPECT_EQ(view_->materialized().size(), 1u);
}

TEST_F(AggregateUnitTest, GroupDisappearsAndReappears) {
  Apply({}, {T({S("b"), I(7)})});
  EXPECT_EQ(view_->materialized().size(), 1u);
  Apply({T({S("b"), I(2)})}, {});
  EXPECT_EQ(Row("b"), T({S("b"), I(1), I(2), I(2), I(2)}));
}

TEST_F(AggregateUnitTest, MixedBatch) {
  // Delete an extremum and insert new tuples in the same delta.
  Apply({T({S("a"), I(9)}), T({S("b"), I(1)})}, {T({S("a"), I(5)})});
  EXPECT_EQ(Row("a"), T({S("a"), I(2), I(10), I(1), I(9)}));
  EXPECT_EQ(Row("b"), T({S("b"), I(2), I(8), I(1), I(7)}));
}

TEST(AggregateCreateTest, Validation) {
  Schema schema({{"g", ValueType::kString}, {"v", ValueType::kString}});
  SchemaResolver resolver = [&schema](const std::string& name) {
    return name == "F" ? &schema : nullptr;
  };
  AggregateViewDef def;
  def.name = "A";
  def.source = Expr::Base("F");
  def.group_by = {"g"};
  def.aggregates = {{AggFunc::kSum, "v", "s"}};
  // SUM over a string attribute.
  EXPECT_FALSE(AggregateView::Create(def, resolver).ok());
  // Unknown group-by attribute.
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  def.group_by = {"zz"};
  EXPECT_FALSE(AggregateView::Create(def, resolver).ok());
  // Empty group-by.
  def.group_by = {};
  EXPECT_FALSE(AggregateView::Create(def, resolver).ok());
  // COUNT with an attribute.
  def.group_by = {"g"};
  def.aggregates = {{AggFunc::kCount, "v", "n"}};
  EXPECT_FALSE(AggregateView::Create(def, resolver).ok());
  // Valid: MIN over a string is fine (lexicographic).
  def.aggregates = {{AggFunc::kMin, "v", "first"}};
  DWC_EXPECT_OK(AggregateView::Create(def, resolver));
}

// --- Warehouse integration: differential test on the star schema.

TEST(AggregateWarehouseTest, MaintainedAcrossStreamsMatchesRecompute) {
  StarSchemaConfig config;
  config.customers = 20;
  config.suppliers = 8;
  config.parts = 30;
  config.locations = 5;
  config.orders = 80;
  config.sales = 300;
  Result<StarSchema> star = BuildStarSchema(config);
  DWC_ASSERT_OK(star);
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(star->catalog, star->views));
  Source source(star->db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);

  // Revenue-ish summary per supplier region.
  AggregateViewDef def;
  def.name = "SalesByRegion";
  def.source = Expr::Base("FactSales");
  def.group_by = {"supp_region"};
  def.aggregates = {{AggFunc::kCount, "", "n_sales"},
                    {AggFunc::kSum, "quantity", "units"},
                    {AggFunc::kMax, "quantity", "biggest"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));

  auto expected = [&]() -> Relation {
    // Fresh re-aggregation from the current warehouse state.
    SchemaResolver resolver = spec->WarehouseResolver();
    Result<AggregateView> fresh = AggregateView::Create(def, resolver);
    EXPECT_TRUE(fresh.ok());
    Environment env = Environment::FromDatabase(warehouse->state());
    EXPECT_TRUE(fresh->Initialize(env).ok());
    return fresh->materialized();
  };

  Rng rng(99);
  for (int step = 0; step < 25; ++step) {
    UpdateStreamOptions options;
    options.max_inserts = 4;
    options.max_deletes = 3;
    options.db_options.int_domain = 4096;
    Result<UpdateOp> op =
        GenerateRandomUpdate(source.db(), "Sales", &rng, options);
    DWC_ASSERT_OK(op);
    Result<CanonicalDelta> delta = source.Apply(*op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(warehouse->Integrate(*delta));
    const AggregateView* agg = warehouse->FindAggregate("SalesByRegion");
    ASSERT_NE(agg, nullptr);
    ASSERT_TRUE(testing::RelationsEqual(agg->materialized(), expected()))
        << "step " << step;
  }
  EXPECT_EQ(source.query_count(), 0u);
}

TEST(AggregateWarehouseTest, QueriesSeeAggregates) {
  ScriptContext context = MustRun(testing::Figure1Script(true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, context.db);
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "SalesPerClerk";
  def.source = Expr::Base("Sold");
  def.group_by = {"clerk"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));

  Result<ExprRef> q = ParseExpr("select[n >= 2](SalesPerClerk)");
  DWC_ASSERT_OK(q);
  Result<Relation> answer = warehouse->AnswerQuery(*q);
  DWC_ASSERT_OK(answer);
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ(answer->SortedTuples()[0], T({S("Mary"), I(2)}));

  // Aggregates can even join with translated base queries.
  Result<ExprRef> q2 =
      ParseExpr("project[clerk, age, n](SalesPerClerk join Emp)");
  DWC_ASSERT_OK(q2);
  Result<Relation> joined = warehouse->AnswerQuery(*q2);
  DWC_ASSERT_OK(joined);
  EXPECT_EQ(joined->size(), 2u);  // Mary and John sell; Paula does not.
}

TEST(AggregateWarehouseTest, NameCollisionsRejected) {
  ScriptContext context = MustRun(testing::Figure1Script(true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, context.db);
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "Sold";  // Collides with a warehouse view.
  def.source = Expr::Base("Sold");
  def.group_by = {"clerk"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  EXPECT_EQ(warehouse->AddAggregateView(def).code(),
            StatusCode::kAlreadyExists);
  // Sources must be warehouse relations, not base relations.
  def.name = "Agg";
  def.source = Expr::Base("Sale");
  EXPECT_EQ(warehouse->AddAggregateView(def).code(),
            StatusCode::kInvalidArgument);
}

TEST(AggregateWarehouseTest, RecomputeStrategyReinitializes) {
  ScriptContext context = MustRun(testing::Figure1Script(true));
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Source source(context.db);
  Result<Warehouse> warehouse = Warehouse::Load(
      spec, source.db(), MaintenanceStrategy::kRecomputeFromInverse);
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "SalesPerClerk";
  def.source = Expr::Base("Sold");
  def.group_by = {"clerk"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));

  UpdateOp op{"Sale", {T({S("Radio"), S("Mary")})}, {}};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));
  const AggregateView* agg = warehouse->FindAggregate("SalesPerClerk");
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(agg->materialized().Contains(T({S("Mary"), I(3)})));
}


TEST(AggregateWarehouseTest, SummaryOverJoinExpressionMaintained) {
  // The aggregate source can be any expression over warehouse relations,
  // not just one fact view: deltas are derived through the same rules.
  ScriptContext context = MustRun(R"(
CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));
CREATE TABLE Sale(item STRING, clerk STRING);
INSERT INTO Emp VALUES ('Mary', 23), ('John', 45);
INSERT INTO Sale VALUES ('TV', 'Mary'), ('PC', 'Mary'), ('Desk', 'John');
VIEW Items AS Sale;
VIEW Staff AS Emp;
)");
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Source source(context.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);

  AggregateViewDef def;
  def.name = "SalesByAge";
  def.source = Expr::Join(Expr::Base("Items"), Expr::Base("Staff"));
  def.group_by = {"age"};
  def.aggregates = {{AggFunc::kCount, "", "n"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));
  const AggregateView* agg = warehouse->FindAggregate("SalesByAge");
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(agg->materialized().Contains(T({I(23), I(2)})));
  EXPECT_TRUE(agg->materialized().Contains(T({I(45), I(1)})));

  // Updates to either base propagate through the join-shaped source.
  Rng rng(5);
  std::vector<UpdateOp> updates = {
      {"Sale", {T({S("Lamp"), S("John")})}, {}},
      {"Emp", {T({S("Zoe"), I(23)})}, {}},
      {"Sale", {T({S("Pen"), S("Zoe")})}, {T({S("TV"), S("Mary")})}},
      {"Emp", {}, {T({S("John"), I(45)})}},
  };
  for (const UpdateOp& op : updates) {
    // Deleting John orphans his sales at the join level, which is exactly
    // what the delta rules must handle.
    if (op.relation == "Emp" && !op.deletes.empty()) {
      UpdateOp cascade{"Sale", {}, {T({S("Desk"), S("John")}),
                                    T({S("Lamp"), S("John")})}};
      Result<CanonicalDelta> cd = source.Apply(cascade);
      DWC_ASSERT_OK(cd);
      DWC_ASSERT_OK(warehouse->Integrate(*cd));
    }
    Result<CanonicalDelta> delta = source.Apply(op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(warehouse->Integrate(*delta));

    // Differential check against fresh re-aggregation.
    SchemaResolver resolver = spec->WarehouseResolver();
    Result<AggregateView> fresh = AggregateView::Create(def, resolver);
    DWC_ASSERT_OK(fresh);
    Environment env = Environment::FromDatabase(warehouse->state());
    DWC_ASSERT_OK(fresh->Initialize(env));
    ASSERT_TRUE(testing::RelationsEqual(
        warehouse->FindAggregate("SalesByAge")->materialized(),
        fresh->materialized()));
  }
  EXPECT_EQ(source.query_count(), 0u);
}

TEST(AggregateWarehouseTest, DoubleSumAccumulates) {
  ScriptContext context = MustRun(R"(
CREATE TABLE M(g STRING, w DOUBLE);
INSERT INTO M VALUES ('a', 1.5), ('a', 2.25), ('b', 0.5);
VIEW V AS M;
)");
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Source source(context.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);
  AggregateViewDef def;
  def.name = "W";
  def.source = Expr::Base("V");
  def.group_by = {"g"};
  def.aggregates = {{AggFunc::kSum, "w", "total"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(def));
  EXPECT_TRUE(warehouse->FindAggregate("W")->materialized().Contains(
      T({S("a"), D(3.75)})));
  UpdateOp op{"M", {T({S("a"), D(0.25)})}, {T({S("a"), D(1.5)})}};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));
  EXPECT_TRUE(warehouse->FindAggregate("W")->materialized().Contains(
      T({S("a"), D(2.5)})));
}

}  // namespace
}  // namespace dwc
