#include "relational/catalog.h"

#include <gtest/gtest.h>

#include "relational/database.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::T;

Schema Ab() { return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}); }
Schema Bc() { return Schema({{"b", ValueType::kInt}, {"c", ValueType::kInt}}); }

TEST(CatalogTest, AddRelationRejectsDuplicates) {
  Catalog catalog;
  DWC_ASSERT_OK(catalog.AddRelation("R", Ab()));
  Status dup = catalog.AddRelation("R", Bc());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.HasRelation("R"));
  EXPECT_EQ(catalog.FindSchema("R")->ToString(), "(a INT, b INT)");
  EXPECT_EQ(catalog.FindSchema("nope"), nullptr);
}

TEST(CatalogTest, KeyValidation) {
  Catalog catalog;
  DWC_ASSERT_OK(catalog.AddRelation("R", Ab()));
  EXPECT_EQ(catalog.AddKey("S", {"a"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.AddKey("R", {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.AddKey("R", {"zz"}).code(), StatusCode::kInvalidArgument);
  DWC_ASSERT_OK(catalog.AddKey("R", {"a"}));
  // The paper allows at most one declared key per relation.
  EXPECT_EQ(catalog.AddKey("R", {"b"}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.FindKey("R")->attrs, (AttrSet{"a"}));
  EXPECT_FALSE(catalog.FindKey("S").has_value());
}

TEST(CatalogTest, InclusionValidation) {
  Catalog catalog;
  DWC_ASSERT_OK(catalog.AddRelation("R", Ab()));
  DWC_ASSERT_OK(catalog.AddRelation("S", Bc()));
  // Unknown relation.
  EXPECT_FALSE(
      catalog.AddInclusion({"X", {"b"}, "S", {"b"}}).ok());
  // Arity mismatch.
  EXPECT_EQ(catalog.AddInclusion({"R", {"a", "b"}, "S", {"b"}}).code(),
            StatusCode::kInvalidArgument);
  // Unknown attribute.
  EXPECT_EQ(catalog.AddInclusion({"R", {"zz"}, "S", {"b"}}).code(),
            StatusCode::kInvalidArgument);
  DWC_ASSERT_OK(catalog.AddInclusion({"R", {"b"}, "S", {"b"}}));
  ASSERT_EQ(catalog.inclusions().size(), 1u);
  EXPECT_EQ(catalog.inclusions()[0].ToString(), "R(b) <= S(b)");
}

TEST(CatalogTest, TypeMismatchedInclusionRejected) {
  Catalog catalog;
  DWC_ASSERT_OK(catalog.AddRelation("R", Ab()));
  DWC_ASSERT_OK(catalog.AddRelation(
      "S", Schema({{"b", ValueType::kString}})));
  EXPECT_EQ(catalog.AddInclusion({"R", {"b"}, "S", {"b"}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, CyclicIndsRejected) {
  Catalog catalog;
  DWC_ASSERT_OK(catalog.AddRelation("R", Ab()));
  DWC_ASSERT_OK(catalog.AddRelation("S", Ab()));
  DWC_ASSERT_OK(catalog.AddRelation("U", Ab()));
  DWC_ASSERT_OK(catalog.AddInclusion({"R", {"a"}, "S", {"a"}}));
  DWC_ASSERT_OK(catalog.AddInclusion({"S", {"a"}, "U", {"a"}}));
  // Closing the cycle U -> R is rejected (paper assumes acyclic INDs).
  Status cyclic = catalog.AddInclusion({"U", {"a"}, "R", {"a"}});
  EXPECT_EQ(cyclic.code(), StatusCode::kFailedPrecondition);
  // Self-loop also rejected.
  EXPECT_EQ(catalog.AddInclusion({"R", {"a"}, "R", {"b"}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CatalogTest, TopologicalOrderRespectsInds) {
  Catalog catalog;
  DWC_ASSERT_OK(catalog.AddRelation("R", Ab()));
  DWC_ASSERT_OK(catalog.AddRelation("S", Ab()));
  DWC_ASSERT_OK(catalog.AddRelation("U", Ab()));
  DWC_ASSERT_OK(catalog.AddInclusion({"S", {"a"}, "U", {"a"}}));
  DWC_ASSERT_OK(catalog.AddInclusion({"R", {"a"}, "S", {"a"}}));
  std::vector<std::string> order = catalog.IndTopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](const std::string& name) {
    return std::find(order.begin(), order.end(), name) - order.begin();
  };
  EXPECT_LT(pos("R"), pos("S"));
  EXPECT_LT(pos("S"), pos("U"));
}

TEST(DatabaseTest, KeyViolationDetected) {
  auto catalog = std::make_shared<Catalog>();
  DWC_ASSERT_OK(catalog->AddRelation("R", Ab()));
  DWC_ASSERT_OK(catalog->AddKey("R", {"a"}));
  Database db(catalog);
  DWC_ASSERT_OK(db.AddEmptyRelation("R", Ab()));
  Relation* r = db.FindMutableRelation("R");
  r->Insert(T({I(1), I(10)}));
  DWC_ASSERT_OK(db.ValidateConstraints());
  r->Insert(T({I(1), I(20)}));
  Status violation = db.ValidateConstraints();
  EXPECT_EQ(violation.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(violation.message().find("key violation"), std::string::npos);
}

TEST(DatabaseTest, InclusionViolationDetected) {
  auto catalog = std::make_shared<Catalog>();
  DWC_ASSERT_OK(catalog->AddRelation("R", Ab()));
  DWC_ASSERT_OK(catalog->AddRelation("S", Bc()));
  DWC_ASSERT_OK(catalog->AddInclusion({"R", {"b"}, "S", {"b"}}));
  Database db(catalog);
  DWC_ASSERT_OK(db.AddEmptyRelation("R", Ab()));
  DWC_ASSERT_OK(db.AddEmptyRelation("S", Bc()));
  db.FindMutableRelation("S")->Insert(T({I(5), I(50)}));
  db.FindMutableRelation("R")->Insert(T({I(1), I(5)}));
  DWC_ASSERT_OK(db.ValidateConstraints());
  db.FindMutableRelation("R")->Insert(T({I(2), I(6)}));
  EXPECT_EQ(db.ValidateConstraints().code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, SchemaMismatchOnAddRejected) {
  auto catalog = std::make_shared<Catalog>();
  DWC_ASSERT_OK(catalog->AddRelation("R", Ab()));
  Database db(catalog);
  EXPECT_EQ(db.AddRelation("R", Relation(Bc())).code(),
            StatusCode::kInvalidArgument);
  DWC_ASSERT_OK(db.AddRelation("R", Relation(Ab())));
  EXPECT_EQ(db.AddRelation("R", Relation(Ab())).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, SameStateAs) {
  Database a, b;
  DWC_ASSERT_OK(a.AddEmptyRelation("R", Ab()));
  DWC_ASSERT_OK(b.AddEmptyRelation("R", Ab()));
  EXPECT_TRUE(a.SameStateAs(b));
  a.FindMutableRelation("R")->Insert(T({I(1), I(2)}));
  EXPECT_FALSE(a.SameStateAs(b));
  b.FindMutableRelation("R")->Insert(T({I(1), I(2)}));
  EXPECT_TRUE(a.SameStateAs(b));
  DWC_ASSERT_OK(b.AddEmptyRelation("S", Bc()));
  EXPECT_FALSE(a.SameStateAs(b));
}

}  // namespace
}  // namespace dwc
