#include "relational/value.h"

#include <gtest/gtest.h>

namespace dwc {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value("literal").AsString(), "literal");
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, MixedNumericCompareNumerically) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_LT(Value::Int(3), Value::Double(3.5));
  EXPECT_GT(Value::Double(4.5), Value::Int(4));
}

TEST(ValueTest, CrossTypeNeverEqual) {
  EXPECT_NE(Value::Int(0), Value::String("0"));
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_NE(Value::Null(), Value::String(""));
}

TEST(ValueTest, OrderingIsTotalAndConsistent) {
  std::vector<Value> values = {Value::Null(), Value::Int(1), Value::Int(2),
                               Value::Double(2.5), Value::String("a"),
                               Value::String("b")};
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_FALSE(values[i] < values[i]);
    for (size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_TRUE((values[i] < values[j]) != (values[j] < values[i]) ||
                  values[i] == values[j]);
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_NE(Value::String("x").Hash(), Value::String("y").Hash());
}

TEST(ValueTest, ToStringRoundTrippable) {
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "INT");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "STRING");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "NULL");
}

}  // namespace
}  // namespace dwc
