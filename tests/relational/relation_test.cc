#include "relational/relation.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::S;
using ::dwc::testing::T;

Schema AbSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}});
}

TEST(RelationTest, InsertEraseContains) {
  Relation rel(AbSchema());
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Insert(T({I(1), S("x")})));
  EXPECT_FALSE(rel.Insert(T({I(1), S("x")})));  // Set semantics.
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(T({I(1), S("x")})));
  EXPECT_FALSE(rel.Contains(T({I(2), S("x")})));
  EXPECT_TRUE(rel.Erase(T({I(1), S("x")})));
  EXPECT_FALSE(rel.Erase(T({I(1), S("x")})));
  EXPECT_TRUE(rel.empty());
}

TEST(RelationTest, IndexLookupAndIncrementalMaintenance) {
  Relation rel(AbSchema());
  rel.Insert(T({I(1), S("x")}));
  rel.Insert(T({I(1), S("y")}));
  rel.Insert(T({I(2), S("x")}));

  const Relation::Index& index = rel.GetIndex({"a"});
  ASSERT_EQ(index.size(), 2u);
  EXPECT_EQ(index.at(T({I(1)})).size(), 2u);
  EXPECT_EQ(index.at(T({I(2)})).size(), 1u);

  // Mutations must keep the existing index correct.
  rel.Insert(T({I(1), S("z")}));
  EXPECT_EQ(index.at(T({I(1)})).size(), 3u);
  rel.Erase(T({I(1), S("x")}));
  EXPECT_EQ(index.at(T({I(1)})).size(), 2u);
  rel.Erase(T({I(2), S("x")}));
  EXPECT_EQ(index.find(T({I(2)})), index.end());
}

TEST(RelationTest, MultiAttributeIndexKeyOrder) {
  Relation rel(AbSchema());
  rel.Insert(T({I(1), S("x")}));
  const Relation::Index& index = rel.GetIndex({"b", "a"});
  // Key order follows the requested attribute order.
  EXPECT_NE(index.find(T({S("x"), I(1)})), index.end());
  EXPECT_EQ(index.find(T({I(1), S("x")})), index.end());
}

TEST(RelationTest, CopyDropsIndexesButKeepsContent) {
  Relation rel(AbSchema());
  rel.Insert(T({I(1), S("x")}));
  rel.GetIndex({"a"});
  Relation copy = rel;
  EXPECT_TRUE(copy.SameContentAs(rel));
  // The copy builds its own index lazily and stays correct.
  const Relation::Index& index = copy.GetIndex({"a"});
  EXPECT_EQ(index.at(T({I(1)})).size(), 1u);
}

TEST(RelationTest, SameContentAsIgnoresColumnOrder) {
  Relation ab(AbSchema());
  ab.Insert(T({I(1), S("x")}));
  Relation ba(Schema({{"b", ValueType::kString}, {"a", ValueType::kInt}}));
  ba.Insert(T({S("x"), I(1)}));
  EXPECT_TRUE(ab.SameContentAs(ba));
  ba.Insert(T({S("y"), I(2)}));
  EXPECT_FALSE(ab.SameContentAs(ba));
}

TEST(RelationTest, AlignToReordersColumns) {
  Relation ba(Schema({{"b", ValueType::kString}, {"a", ValueType::kInt}}));
  ba.Insert(T({S("x"), I(1)}));
  Result<Relation> aligned = ba.AlignTo(AbSchema());
  DWC_ASSERT_OK(aligned);
  EXPECT_TRUE(aligned->Contains(T({I(1), S("x")})));

  Relation other(Schema({{"c", ValueType::kInt}}));
  EXPECT_FALSE(other.AlignTo(AbSchema()).ok());
}

TEST(RelationTest, SortedTuplesDeterministic) {
  Relation rel(AbSchema());
  rel.Insert(T({I(2), S("b")}));
  rel.Insert(T({I(1), S("z")}));
  rel.Insert(T({I(1), S("a")}));
  std::vector<Tuple> sorted = rel.SortedTuples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], T({I(1), S("a")}));
  EXPECT_EQ(sorted[1], T({I(1), S("z")}));
  EXPECT_EQ(sorted[2], T({I(2), S("b")}));
}

TEST(RelationTest, ClearDropsEverything) {
  Relation rel(AbSchema());
  rel.Insert(T({I(1), S("x")}));
  rel.GetIndex({"a"});
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.GetIndex({"a"}).empty());
}

TEST(TupleTest, ProjectAndHash) {
  Tuple tuple = T({I(1), S("x"), I(9)});
  Tuple projected = tuple.Project({2, 0});
  EXPECT_EQ(projected, T({I(9), I(1)}));
  EXPECT_EQ(tuple.Hash(), T({I(1), S("x"), I(9)}).Hash());
  EXPECT_EQ(tuple.ToString(), "<1, 'x', 9>");
}

TEST(TupleTest, CachedHashSurvivesRebuilds) {
  // The hash is computed once at construction; regression check that every
  // path that *rebuilds* tuples (Project, AlignTo's column reorder) yields
  // tuples whose cached hash equals a fresh construction's — hash joins key
  // on Tuple::Hash(), so a stale or path-dependent cache would silently
  // drop matches.
  Tuple tuple = T({I(7), S("q"), I(3)});
  Tuple projected = tuple.Project({1, 2});
  EXPECT_EQ(projected.Hash(), T({S("q"), I(3)}).Hash());
  EXPECT_EQ(tuple.Project({0, 1, 2}).Hash(), tuple.Hash());

  Relation rel(AbSchema());
  rel.Insert(T({I(1), S("x")}));
  rel.Insert(T({I(2), S("y")}));
  Schema flipped({{"b", ValueType::kString}, {"a", ValueType::kInt}});
  Result<Relation> aligned = rel.AlignTo(flipped);
  ASSERT_TRUE(aligned.ok()) << aligned.status().ToString();
  for (const Tuple& t : aligned->tuples()) {
    EXPECT_EQ(t.Hash(), Tuple(t.values()).Hash());
  }
  EXPECT_TRUE(aligned->Contains(T({S("x"), I(1)})));  // Set lookup via hash.
}

TEST(SchemaTest, CreateRejectsDuplicates) {
  Result<Schema> bad = Schema::Create(
      {{"a", ValueType::kInt}, {"a", ValueType::kString}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, LookupsAndCommonAttrs) {
  Schema ab = AbSchema();
  Schema bc({{"b", ValueType::kString}, {"c", ValueType::kInt}});
  EXPECT_EQ(ab.IndexOf("b"), 1u);
  EXPECT_FALSE(ab.IndexOf("zz").has_value());
  EXPECT_TRUE(ab.ContainsAll({"a", "b"}));
  EXPECT_FALSE(ab.ContainsAll({"a", "c"}));
  EXPECT_EQ(ab.CommonWith(bc), std::vector<std::string>{"b"});
  EXPECT_EQ(ab.attr_names(), (AttrSet{"a", "b"}));
  Result<std::vector<size_t>> idx = ab.IndicesOf({"b", "a"});
  DWC_ASSERT_OK(idx);
  EXPECT_EQ(*idx, (std::vector<size_t>{1, 0}));
  EXPECT_FALSE(ab.IndicesOf({"nope"}).ok());
}

TEST(SchemaTest, SameAttrsAsIgnoresOrderButNotTypes) {
  Schema ab = AbSchema();
  Schema ba({{"b", ValueType::kString}, {"a", ValueType::kInt}});
  Schema ab_badtype({{"a", ValueType::kString}, {"b", ValueType::kString}});
  EXPECT_TRUE(ab.SameAttrsAs(ba));
  EXPECT_FALSE(ab.SameAttrsAs(ab_badtype));
  EXPECT_FALSE(ab == ba);
  EXPECT_EQ(ab.ToString(), "(a INT, b STRING)");
}

TEST(SchemaTest, IndexOfOnWideSchemaAndAfterCopies) {
  // Regression for the name→index map built at construction: every
  // position resolves on a wide schema, and the map survives copies and
  // moves (it is shared, not rebuilt or dangling).
  std::vector<Attribute> attrs;
  for (int i = 0; i < 64; ++i) {
    attrs.push_back(Attribute{"col" + std::to_string(i), ValueType::kInt});
  }
  Result<Schema> wide = Schema::Create(attrs);
  DWC_ASSERT_OK(wide);
  for (size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_EQ(wide->IndexOf(attrs[i].name), i);
  }
  Schema copy = *wide;
  Schema moved = std::move(*wide);
  EXPECT_EQ(copy.IndexOf("col63"), 63u);
  EXPECT_EQ(moved.IndexOf("col0"), 0u);
  EXPECT_FALSE(moved.IndexOf("col64").has_value());
  // Default-constructed schema has no attributes and no lookups.
  EXPECT_FALSE(Schema().IndexOf("col0").has_value());
}

TEST(RelationTest, VersionBumpsOnEffectiveMutationsOnly) {
  Relation rel(AbSchema());
  const uint64_t v0 = rel.version();
  EXPECT_TRUE(rel.Insert(T({I(1), S("x")})));
  EXPECT_GT(rel.version(), v0);
  const uint64_t v1 = rel.version();
  EXPECT_FALSE(rel.Insert(T({I(1), S("x")})));  // Duplicate: no-op.
  EXPECT_EQ(rel.version(), v1);
  EXPECT_FALSE(rel.Erase(T({I(2), S("x")})));  // Absent: no-op.
  EXPECT_EQ(rel.version(), v1);
  EXPECT_TRUE(rel.Erase(T({I(1), S("x")})));
  EXPECT_GT(rel.version(), v1);
  const uint64_t v2 = rel.version();
  rel.Clear();  // Already empty: no-op.
  EXPECT_EQ(rel.version(), v2);
  rel.Insert(T({I(3), S("y")}));
  rel.Clear();
  EXPECT_GT(rel.version(), v2);
}

TEST(RelationTest, UidsAreFreshPerObjectAndStableAcrossMutations) {
  Relation a(AbSchema());
  Relation b(AbSchema());
  EXPECT_NE(a.uid(), b.uid());
  const uint64_t a_uid = a.uid();
  a.Insert(T({I(1), S("x")}));
  EXPECT_EQ(a.uid(), a_uid);  // Mutations bump version, never uid.

  // Copies are new identities: a (uid, version) snapshot taken against the
  // original can never match the copy.
  Relation copy = a;
  EXPECT_NE(copy.uid(), a.uid());

  // Assignment replaces content: the target's version must move.
  Relation assigned(AbSchema());
  const uint64_t assigned_v0 = assigned.version();
  assigned = a;
  EXPECT_GT(assigned.version(), assigned_v0);

  // Moving from a relation invalidates snapshots of the moved-from object.
  const uint64_t a_version = a.version();
  Relation moved = std::move(a);
  EXPECT_GT(a.version(), a_version);  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace dwc
