// EvalStats: the evaluator reports how it did its work (EXPLAIN-style).

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::T;

class EvalStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    big_ = Relation(Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
    for (int64_t i = 0; i < 500; ++i) {
      big_.Insert(T({I(i), I(i * 3)}));
    }
    tiny_ = Relation(Schema({{"k", ValueType::kInt}}));
    tiny_.Insert(T({I(7)}));
    tiny_.Insert(T({I(450)}));
    env_.Bind("Big", &big_);
    env_.Bind("Tiny", &tiny_);
  }

  Relation big_{Schema(std::vector<Attribute>{})};
  Relation tiny_{Schema(std::vector<Attribute>{})};
  Environment env_;
};

TEST_F(EvalStatsTest, PushdownJoinCountsProbes) {
  Result<ExprRef> expr = ParseExpr("Tiny join project[k, v](Big)");
  DWC_ASSERT_OK(expr);
  Evaluator evaluator(&env_);
  Result<Relation> out = evaluator.Materialize(**expr);
  DWC_ASSERT_OK(out);
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(evaluator.stats().joins, 1u);
  EXPECT_EQ(evaluator.stats().pushdown_joins, 1u);
  EXPECT_EQ(evaluator.stats().index_probes, 2u);  // Two keys probed.
}

TEST_F(EvalStatsTest, DisabledPushdownReportsPlainJoins) {
  Result<ExprRef> expr = ParseExpr("Tiny join project[k, v](Big)");
  DWC_ASSERT_OK(expr);
  EvaluatorOptions options;
  options.enable_pushdown = false;
  Evaluator evaluator(&env_, options);
  Result<Relation> out = evaluator.Materialize(**expr);
  DWC_ASSERT_OK(out);
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(evaluator.stats().joins, 1u);
  EXPECT_EQ(evaluator.stats().pushdown_joins, 0u);
  EXPECT_EQ(evaluator.stats().index_probes, 0u);
}

TEST_F(EvalStatsTest, DifferencePushdownCounted) {
  Relation small(big_.schema());
  small.Insert(T({I(3), I(9)}));
  small.Insert(T({I(900), I(0)}));
  env_.Bind("Small", &small);
  Result<ExprRef> expr = ParseExpr("Small minus project[k, v](Big)");
  DWC_ASSERT_OK(expr);
  Evaluator evaluator(&env_);
  Result<Relation> out = evaluator.Materialize(**expr);
  DWC_ASSERT_OK(out);
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(evaluator.stats().differences, 1u);
  EXPECT_EQ(evaluator.stats().pushdown_differences, 1u);
}

TEST_F(EvalStatsTest, StatsAccumulateAndReset) {
  Result<ExprRef> expr = ParseExpr("Tiny join Big");
  DWC_ASSERT_OK(expr);
  Evaluator evaluator(&env_);
  DWC_ASSERT_OK(evaluator.Materialize(**expr));
  DWC_ASSERT_OK(evaluator.Materialize(**expr));
  EXPECT_EQ(evaluator.stats().joins, 2u);
  evaluator.ResetStats();
  EXPECT_EQ(evaluator.stats().joins, 0u);
  EXPECT_FALSE(evaluator.stats().ToString().empty());
}

}  // namespace
}  // namespace dwc
