// Differential test for the semijoin-pushdown evaluator: joins and
// differences where one side is small take the EvalWithFilter fast path;
// their results must be identical to a reference evaluator without any
// pushdown. Random expressions over random states, plus hand-picked shapes
// that exercise each pushdown rule.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "parser/parser.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

// Reference: evaluate bottom-up with no pushdown by materializing every
// operand through fresh single-node evaluations.
Result<Relation> ReferenceEval(const Expr& expr, const Environment& env) {
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      const Relation* rel = env.Find(expr.base_name());
      if (rel == nullptr) {
        return Status::NotFound(expr.base_name());
      }
      return *rel;
    }
    case Expr::Kind::kEmpty:
      return Relation(expr.empty_schema());
    case Expr::Kind::kSelect: {
      DWC_ASSIGN_OR_RETURN(Relation child, ReferenceEval(*expr.child(), env));
      Relation out(child.schema());
      for (const Tuple& tuple : child.tuples()) {
        DWC_ASSIGN_OR_RETURN(bool keep,
                             expr.predicate()->Eval(child.schema(), tuple));
        if (keep) {
          out.Insert(tuple);
        }
      }
      return out;
    }
    case Expr::Kind::kProject: {
      DWC_ASSIGN_OR_RETURN(Relation child, ReferenceEval(*expr.child(), env));
      DWC_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                           child.schema().IndicesOf(expr.attrs()));
      std::vector<Attribute> attrs;
      for (size_t idx : indices) {
        attrs.push_back(child.schema().attribute(idx));
      }
      DWC_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(schema));
      for (const Tuple& tuple : child.tuples()) {
        out.Insert(tuple.Project(indices));
      }
      return out;
    }
    case Expr::Kind::kRename: {
      DWC_ASSIGN_OR_RETURN(Relation child, ReferenceEval(*expr.child(), env));
      std::vector<Attribute> attrs;
      for (const Attribute& attr : child.schema().attributes()) {
        auto it = expr.renames().find(attr.name);
        attrs.push_back(Attribute{
            it == expr.renames().end() ? attr.name : it->second, attr.type});
      }
      DWC_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(schema));
      for (const Tuple& tuple : child.tuples()) {
        out.Insert(tuple);
      }
      return out;
    }
    case Expr::Kind::kJoin: {
      DWC_ASSIGN_OR_RETURN(Relation left, ReferenceEval(*expr.left(), env));
      DWC_ASSIGN_OR_RETURN(Relation right, ReferenceEval(*expr.right(), env));
      // Nested loop join: the dumbest correct implementation.
      const Schema& ls = left.schema();
      const Schema& rs = right.schema();
      std::vector<std::string> common = ls.CommonWith(rs);
      DWC_ASSIGN_OR_RETURN(std::vector<size_t> lidx, ls.IndicesOf(common));
      DWC_ASSIGN_OR_RETURN(std::vector<size_t> ridx, rs.IndicesOf(common));
      std::vector<Attribute> attrs = ls.attributes();
      std::vector<size_t> right_extra;
      for (size_t i = 0; i < rs.size(); ++i) {
        if (!ls.Contains(rs.attribute(i).name)) {
          attrs.push_back(rs.attribute(i));
          right_extra.push_back(i);
        }
      }
      DWC_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(schema));
      for (const Tuple& lt : left.tuples()) {
        for (const Tuple& rt : right.tuples()) {
          if (lt.Project(lidx) != rt.Project(ridx)) {
            continue;
          }
          std::vector<Value> values = lt.values();
          for (size_t idx : right_extra) {
            values.push_back(rt.at(idx));
          }
          out.Insert(Tuple(std::move(values)));
        }
      }
      return out;
    }
    case Expr::Kind::kUnion: {
      DWC_ASSIGN_OR_RETURN(Relation left, ReferenceEval(*expr.left(), env));
      DWC_ASSIGN_OR_RETURN(Relation right, ReferenceEval(*expr.right(), env));
      DWC_ASSIGN_OR_RETURN(Relation aligned, right.AlignTo(left.schema()));
      for (const Tuple& tuple : aligned.tuples()) {
        left.Insert(tuple);
      }
      return left;
    }
    case Expr::Kind::kDifference: {
      DWC_ASSIGN_OR_RETURN(Relation left, ReferenceEval(*expr.left(), env));
      DWC_ASSIGN_OR_RETURN(Relation right, ReferenceEval(*expr.right(), env));
      DWC_ASSIGN_OR_RETURN(Relation aligned, right.AlignTo(left.schema()));
      for (const Tuple& tuple : aligned.tuples()) {
        left.Erase(tuple);
      }
      return left;
    }
  }
  return Status::Internal("unknown kind");
}

class PushdownPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PushdownPropertyTest, EvaluatorMatchesReferenceOnRandomExprs) {
  Rng rng(GetParam());
  for (CatalogShape shape : {CatalogShape::kChain, CatalogShape::kKeyedInds}) {
    std::shared_ptr<Catalog> catalog = MakeCatalog(shape);
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    // Add a tiny extra relation so small-vs-big pushdown cases arise often.
    Environment env = Environment::FromDatabase(*db);
    for (int round = 0; round < 40; ++round) {
      RandomQueryOptions options;
      options.max_depth = 4;
      Result<ExprRef> expr = GenerateRandomQuery(*catalog, &rng, options);
      DWC_ASSERT_OK(expr);
      Result<Relation> fast = EvalExpr(**expr, env);
      Result<Relation> reference = ReferenceEval(**expr, env);
      ASSERT_EQ(fast.ok(), reference.ok()) << (*expr)->ToString();
      if (!fast.ok()) {
        continue;
      }
      ASSERT_TRUE(testing::RelationsEqual(*fast, *reference))
          << (*expr)->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PushdownPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(PushdownShapesTest, SmallDeltaJoinsBigExpression) {
  // The exact shape maintenance plans produce: tiny delta joined with a
  // union-of-projection reconstruction.
  ScriptContext context = testing::MustRun(R"(
CREATE TABLE Big(k INT, v INT);
CREATE TABLE Aux(k INT, v INT);
CREATE TABLE Tiny(k INT);
INSERT INTO Tiny VALUES (3), (500);
)");
  Relation* big = context.db.FindMutableRelation("Big");
  Relation* aux = context.db.FindMutableRelation("Aux");
  for (int64_t i = 0; i < 1000; ++i) {
    big->Insert(Tuple({Value::Int(i), Value::Int(i * 2)}));
    if (i % 2 == 0) {
      aux->Insert(Tuple({Value::Int(i), Value::Int(-i)}));
    }
  }
  Environment env = Environment::FromDatabase(context.db);
  Result<ExprRef> expr = ParseExpr(
      "Tiny join (project[k, v](Big) union Aux)");
  DWC_ASSERT_OK(expr);
  Result<Relation> out = EvalExpr(**expr, env);
  DWC_ASSERT_OK(out);
  Result<Relation> reference = ReferenceEval(**expr, env);
  DWC_ASSERT_OK(reference);
  EXPECT_TRUE(testing::RelationsEqual(*out, *reference));
  // k=3: Big yields (3,6); k=500: Big yields (500,1000), Aux yields
  // (500,-500).
  EXPECT_EQ(out->size(), 3u);
}

TEST(PushdownShapesTest, SmallLeftDifferenceAgainstBigExpression) {
  ScriptContext context = testing::MustRun(R"(
CREATE TABLE Big(k INT, v INT);
CREATE TABLE Small(k INT, v INT);
INSERT INTO Small VALUES (1, 2), (5000, 0);
)");
  Relation* big = context.db.FindMutableRelation("Big");
  for (int64_t i = 0; i < 2000; ++i) {
    big->Insert(Tuple({Value::Int(i), Value::Int(i * 2)}));
  }
  Environment env = Environment::FromDatabase(context.db);
  Result<ExprRef> expr = ParseExpr("Small minus project[k, v](Big)");
  DWC_ASSERT_OK(expr);
  Result<Relation> out = EvalExpr(**expr, env);
  DWC_ASSERT_OK(out);
  // (1,2) is in Big; (5000,0) is not.
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->Contains(Tuple({Value::Int(5000), Value::Int(0)})));
}

TEST(PushdownShapesTest, FilterThroughRenameAndSelect) {
  ScriptContext context = testing::MustRun(R"(
CREATE TABLE Big(a INT, b INT);
CREATE TABLE Tiny(x INT);
INSERT INTO Tiny VALUES (7), (8);
)");
  Relation* big = context.db.FindMutableRelation("Big");
  for (int64_t i = 0; i < 500; ++i) {
    big->Insert(Tuple({Value::Int(i), Value::Int(i % 10)}));
  }
  Environment env = Environment::FromDatabase(context.db);
  Result<ExprRef> expr = ParseExpr(
      "Tiny join rename[a -> x](select[b >= 5](Big))");
  DWC_ASSERT_OK(expr);
  Result<Relation> out = EvalExpr(**expr, env);
  DWC_ASSERT_OK(out);
  Result<Relation> reference = ReferenceEval(**expr, env);
  DWC_ASSERT_OK(reference);
  EXPECT_TRUE(testing::RelationsEqual(*out, *reference));
  // a=7 -> b=7 passes; a=8 -> b=8 passes.
  EXPECT_EQ(out->size(), 2u);
}

TEST(PushdownShapesTest, PartialFilterIntoJoinChildren) {
  // Filter attributes split across the two join children.
  ScriptContext context = testing::MustRun(R"(
CREATE TABLE L(a INT, j INT);
CREATE TABLE R2(j INT, b INT);
CREATE TABLE Probe(a INT, b INT);
INSERT INTO Probe VALUES (1, 100), (2, 999);
)");
  Relation* l = context.db.FindMutableRelation("L");
  Relation* r = context.db.FindMutableRelation("R2");
  for (int64_t i = 0; i < 300; ++i) {
    l->Insert(Tuple({Value::Int(i), Value::Int(i % 50)}));
    r->Insert(Tuple({Value::Int(i % 50), Value::Int(i * 100)}));
  }
  Environment env = Environment::FromDatabase(context.db);
  Result<ExprRef> expr = ParseExpr("Probe join (L join R2)");
  DWC_ASSERT_OK(expr);
  Result<Relation> out = EvalExpr(**expr, env);
  DWC_ASSERT_OK(out);
  Result<Relation> reference = ReferenceEval(**expr, env);
  DWC_ASSERT_OK(reference);
  EXPECT_TRUE(testing::RelationsEqual(*out, *reference));
}

}  // namespace
}  // namespace dwc
