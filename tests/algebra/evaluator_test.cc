#include "algebra/evaluator.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::S;
using ::dwc::testing::T;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Relation(Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    r_.Insert(T({I(1), I(10)}));
    r_.Insert(T({I(2), I(20)}));
    r_.Insert(T({I(3), I(30)}));
    s_ = Relation(Schema({{"b", ValueType::kInt}, {"c", ValueType::kString}}));
    s_.Insert(T({I(10), S("x")}));
    s_.Insert(T({I(10), S("y")}));
    s_.Insert(T({I(40), S("z")}));
    env_.Bind("R", &r_);
    env_.Bind("S", &s_);
  }

  Relation Eval(const std::string& text) {
    Result<ExprRef> expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    Result<Relation> rel = EvalExpr(**expr, env_);
    EXPECT_TRUE(rel.ok()) << rel.status();
    return std::move(rel).value();
  }

  Relation r_, s_;
  Environment env_;
};

TEST_F(EvaluatorTest, BaseAliasesWithoutCopy) {
  Evaluator evaluator(&env_);
  Result<ExprRef> expr = ParseExpr("R");
  DWC_ASSERT_OK(expr);
  Result<std::shared_ptr<const Relation>> rel = evaluator.Eval(**expr);
  DWC_ASSERT_OK(rel);
  EXPECT_EQ(rel->get(), &r_);  // No copy: the binding itself.
}

TEST_F(EvaluatorTest, UnboundNameFails) {
  Result<ExprRef> expr = ParseExpr("Nope");
  DWC_ASSERT_OK(expr);
  Result<Relation> rel = EvalExpr(**expr, env_);
  EXPECT_EQ(rel.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, Select) {
  Relation out = Eval("select[a >= 2](R)");
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(T({I(2), I(20)})));
  EXPECT_TRUE(out.Contains(T({I(3), I(30)})));
}

TEST_F(EvaluatorTest, SelectComposite) {
  Relation out = Eval("select[a >= 2 and not (b = 30)](R)");
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(T({I(2), I(20)})));
  out = Eval("select[a = 1 or b = 30](R)");
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(EvaluatorTest, ProjectDeduplicates) {
  Relation out = Eval("project[c](S)");
  // 'x','y','z' stay; but project[b](S) collapses the two b=10 rows.
  EXPECT_EQ(out.size(), 3u);
  out = Eval("project[b](S)");
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(EvaluatorTest, ProjectReordersColumns) {
  Relation out = Eval("project[b, a](R)");
  EXPECT_EQ(out.schema().attribute(0).name, "b");
  EXPECT_TRUE(out.Contains(T({I(10), I(1)})));
}

TEST_F(EvaluatorTest, ProjectUnknownAttrFails) {
  Result<ExprRef> expr = ParseExpr("project[zz](R)");
  DWC_ASSERT_OK(expr);
  EXPECT_FALSE(EvalExpr(**expr, env_).ok());
}

TEST_F(EvaluatorTest, NaturalJoin) {
  Relation out = Eval("R join S");
  // Only b=10 matches: (1,10) x {(10,x),(10,y)}.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.schema().ToString(), "(a INT, b INT, c STRING)");
  EXPECT_TRUE(out.Contains(T({I(1), I(10), S("x")})));
  EXPECT_TRUE(out.Contains(T({I(1), I(10), S("y")})));
}

TEST_F(EvaluatorTest, JoinWithNoSharedAttrsIsProduct) {
  Relation t(Schema({{"d", ValueType::kInt}}));
  t.Insert(T({I(7)}));
  t.Insert(T({I(8)}));
  env_.Bind("U", &t);
  Relation out = Eval("R join U");
  EXPECT_EQ(out.size(), 6u);
}

TEST_F(EvaluatorTest, SelfJoinIsIdentity) {
  Relation out = Eval("R join R");
  EXPECT_TRUE(out.SameContentAs(r_));
}

TEST_F(EvaluatorTest, UnionAndDifferenceAlignColumns) {
  Relation flipped(Schema({{"b", ValueType::kInt}, {"a", ValueType::kInt}}));
  flipped.Insert(T({I(99), I(9)}));
  flipped.Insert(T({I(10), I(1)}));  // Same as (1,10) in R.
  env_.Bind("F", &flipped);
  Relation u = Eval("R union F");
  EXPECT_EQ(u.size(), 4u);
  Relation d = Eval("R minus F");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.Contains(T({I(1), I(10)})));
}

TEST_F(EvaluatorTest, UnionSchemaMismatchFails) {
  Result<ExprRef> expr = ParseExpr("R union S");
  DWC_ASSERT_OK(expr);
  EXPECT_EQ(EvalExpr(**expr, env_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, Rename) {
  Relation out = Eval("rename[a -> x](R)");
  EXPECT_EQ(out.schema().ToString(), "(x INT, b INT)");
  EXPECT_TRUE(out.Contains(T({I(1), I(10)})));
  // Renaming enables unions across differently-named relations.
  out = Eval("project[x](rename[a -> x](R)) union project[x](rename[b -> x](R))");
  EXPECT_EQ(out.size(), 6u);
}

TEST_F(EvaluatorTest, RenameUnknownSourceFails) {
  Result<ExprRef> expr = ParseExpr("rename[zz -> q](R)");
  DWC_ASSERT_OK(expr);
  EXPECT_FALSE(EvalExpr(**expr, env_).ok());
}

TEST_F(EvaluatorTest, EmptyLiteral) {
  Relation out = Eval("empty[a INT, b INT]");
  EXPECT_TRUE(out.empty());
  out = Eval("R union empty[a INT, b INT]");
  EXPECT_EQ(out.size(), 3u);
  out = Eval("R join empty[b INT, c STRING]");
  EXPECT_TRUE(out.empty());
}

TEST_F(EvaluatorTest, ComposedExpression) {
  Relation out =
      Eval("project[a, c](select[c != 'y'](R join S)) minus empty[a INT, c STRING]");
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(T({I(1), S("x")})));
}

}  // namespace
}  // namespace dwc
