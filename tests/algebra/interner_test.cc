#include "algebra/interner.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;

ExprRef SelGt(const char* attr, int64_t threshold, ExprRef child) {
  return Expr::Select(Predicate::Cmp(Operand::Attr(attr), CmpOp::kGt,
                                     Operand::Const(I(threshold))),
                      std::move(child));
}

TEST(InternerTest, EqualTreesBecomeTheSameNode) {
  ExprInterner interner;
  ExprRef a = SelGt("x", 5, Expr::Join(Expr::Base("R"), Expr::Base("S")));
  ExprRef b = SelGt("x", 5, Expr::Join(Expr::Base("R"), Expr::Base("S")));
  ASSERT_NE(a.get(), b.get());

  ExprRef ca = interner.Intern(a);
  ExprRef cb = interner.Intern(b);
  EXPECT_EQ(ca.get(), cb.get());
  EXPECT_EQ(interner.IdOf(ca.get()), interner.IdOf(cb.get()));
  EXPECT_NE(interner.IdOf(ca.get()), 0u);
  // Select + Join + 2 bases: four distinct nodes, both trees collapse
  // onto them.
  EXPECT_EQ(interner.size(), 4u);
}

TEST(InternerTest, SubtreesAreSharedAcrossDifferentRoots) {
  ExprInterner interner;
  ExprRef join = Expr::Join(Expr::Base("R"), Expr::Base("S"));
  ExprRef view = interner.Intern(Expr::Project({"a"}, join));
  ExprRef query = interner.Intern(SelGt("a", 0, join));
  // The shared join subtree is one node reachable from both roots.
  EXPECT_EQ(view->child().get(), query->child().get());
}

TEST(InternerTest, InternIsIdempotent) {
  ExprInterner interner;
  ExprRef canon = interner.Intern(
      Expr::Union(Expr::Base("R"), Expr::Project({"a"}, Expr::Base("S"))));
  EXPECT_EQ(interner.Intern(canon).get(), canon.get());
}

TEST(InternerTest, CidEquatesCommutedJoinAndUnionOnly) {
  ExprInterner interner;
  ExprRef rs_join = interner.Intern(Expr::Join(Expr::Base("R"), Expr::Base("S")));
  ExprRef sr_join = interner.Intern(Expr::Join(Expr::Base("S"), Expr::Base("R")));
  EXPECT_NE(rs_join.get(), sr_join.get());
  EXPECT_NE(interner.IdOf(rs_join.get()), interner.IdOf(sr_join.get()));
  EXPECT_EQ(interner.CidOf(rs_join.get()), interner.CidOf(sr_join.get()));

  ExprRef rs_union =
      interner.Intern(Expr::Union(Expr::Base("R"), Expr::Base("S")));
  ExprRef sr_union =
      interner.Intern(Expr::Union(Expr::Base("S"), Expr::Base("R")));
  EXPECT_EQ(interner.CidOf(rs_union.get()), interner.CidOf(sr_union.get()));
  // Join and union twins must not share a class with each other.
  EXPECT_NE(interner.CidOf(rs_join.get()), interner.CidOf(rs_union.get()));

  // Difference is not commutative: R \ S and S \ R stay distinct classes.
  ExprRef rs_diff =
      interner.Intern(Expr::Difference(Expr::Base("R"), Expr::Base("S")));
  ExprRef sr_diff =
      interner.Intern(Expr::Difference(Expr::Base("S"), Expr::Base("R")));
  EXPECT_NE(interner.CidOf(rs_diff.get()), interner.CidOf(sr_diff.get()));
}

TEST(InternerTest, PayloadsDistinguishNodes) {
  ExprInterner interner;
  ExprRef base = Expr::Base("R");
  uint64_t sel5 = interner.IdOf(interner.Intern(SelGt("x", 5, base)).get());
  uint64_t sel6 = interner.IdOf(interner.Intern(SelGt("x", 6, base)).get());
  uint64_t proj_a =
      interner.IdOf(interner.Intern(Expr::Project({"a"}, base)).get());
  uint64_t proj_b =
      interner.IdOf(interner.Intern(Expr::Project({"b"}, base)).get());
  uint64_t ren = interner.IdOf(
      interner.Intern(Expr::Rename({{"a", "b"}}, base)).get());
  EXPECT_NE(sel5, sel6);
  EXPECT_NE(proj_a, proj_b);
  EXPECT_NE(ren, proj_a);
}

TEST(InternerTest, InterningNeverReordersOperands) {
  // The canonical node must evaluate exactly like the input tree: cids
  // identify commuted twins, but the stored operand order is the original
  // one (the evaluator realigns cache hits instead).
  ExprInterner interner;
  ExprRef sr = interner.Intern(Expr::Join(Expr::Base("S"), Expr::Base("R")));
  EXPECT_EQ(sr->left()->base_name(), "S");
  EXPECT_EQ(sr->right()->base_name(), "R");
}

TEST(InternerTest, InputsOfListsSortedTransitiveBases) {
  ExprInterner interner;
  ExprRef expr = interner.Intern(Expr::Join(
      Expr::Base("Zeta"), SelGt("x", 1, Expr::Join(Expr::Base("Alpha"),
                                                   Expr::Base("Zeta")))));
  const std::vector<std::string>* inputs = interner.InputsOf(expr.get());
  ASSERT_NE(inputs, nullptr);
  EXPECT_EQ(*inputs, (std::vector<std::string>{"Alpha", "Zeta"}));
}

TEST(InternerTest, ForeignNodesAreUnknown) {
  ExprInterner interner;
  ExprRef foreign = Expr::Base("R");
  EXPECT_EQ(interner.IdOf(foreign.get()), 0u);
  EXPECT_EQ(interner.CidOf(foreign.get()), 0u);
  EXPECT_EQ(interner.InputsOf(foreign.get()), nullptr);
  EXPECT_EQ(interner.IdOf(nullptr), 0u);
}

TEST(InternerTest, ConcurrentInterningConverges) {
  ExprInterner interner;
  std::vector<std::thread> workers;
  std::vector<ExprRef> results(8);
  for (size_t t = 0; t < results.size(); ++t) {
    workers.emplace_back([&interner, &results, t] {
      for (int i = 0; i < 50; ++i) {
        results[t] = interner.Intern(
            SelGt("x", 7, Expr::Join(Expr::Base("R"), Expr::Base("S"))));
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(interner.size(), 4u);
}

}  // namespace
}  // namespace dwc
