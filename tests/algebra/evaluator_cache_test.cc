// The evaluator's subplan memoization: recycled results must be
// indistinguishable from fresh evaluation — same relations, same column
// order — across repeated queries, commuted twins, and input mutations.

#include <gtest/gtest.h>

#include <memory>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "algebra/expr.h"
#include "algebra/interner.h"
#include "algebra/predicate.h"
#include "algebra/subplan_cache.h"
#include "relational/relation.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::S;
using ::dwc::testing::T;

class EvaluatorCacheTest : public ::testing::Test {
 protected:
  EvaluatorCacheTest()
      : r_(Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}})),
        s_(Schema({{"a", ValueType::kInt}, {"c", ValueType::kInt}})) {
    r_.Insert(T({I(1), S("x")}));
    r_.Insert(T({I(2), S("y")}));
    r_.Insert(T({I(3), S("z")}));
    s_.Insert(T({I(1), I(10)}));
    s_.Insert(T({I(3), I(30)}));
    env_.Bind("R", &r_);
    env_.Bind("S", &s_);
    cache_.set_budget(1 << 20);
  }

  Evaluator CachedEvaluator() {
    EvaluatorOptions options;
    options.cache_budget_tuples = 1 << 20;
    return Evaluator(&env_, options, &interner_, &cache_);
  }

  Relation r_;
  Relation s_;
  Environment env_;
  ExprInterner interner_;
  SubplanCache cache_;
};

TEST_F(EvaluatorCacheTest, RepeatedEvaluationHitsAndMatchesFresh) {
  ExprRef expr = interner_.Intern(
      Expr::Project({"a", "c"}, Expr::Join(Expr::Base("R"), Expr::Base("S"))));

  Evaluator uncached(&env_);
  Result<Relation> fresh = uncached.Materialize(*expr);
  DWC_ASSERT_OK(fresh);

  Evaluator cached = CachedEvaluator();
  Result<Relation> first = cached.Materialize(*expr);
  DWC_ASSERT_OK(first);
  EXPECT_EQ(cached.stats().cache_hits, 0u);
  EXPECT_GT(cached.stats().cache_misses, 0u);

  Result<Relation> second = cached.Materialize(*expr);
  DWC_ASSERT_OK(second);
  EXPECT_GT(cached.stats().cache_hits, 0u);

  EXPECT_EQ(first->schema(), fresh->schema());
  EXPECT_EQ(second->schema(), fresh->schema());
  EXPECT_TRUE(first->SameContentAs(*fresh));
  EXPECT_TRUE(second->SameContentAs(*fresh));
}

TEST_F(EvaluatorCacheTest, MutationInvalidates) {
  ExprRef expr = interner_.Intern(Expr::Join(Expr::Base("R"), Expr::Base("S")));
  Evaluator cached = CachedEvaluator();
  DWC_ASSERT_OK(cached.Materialize(*expr));
  ASSERT_TRUE(cached.Materialize(*expr).ok());
  const size_t hits_before = cached.stats().cache_hits;
  EXPECT_GT(hits_before, 0u);

  // Mutating an input bumps its version: the stale entry must not serve.
  r_.Insert(T({I(4), S("w")}));
  Result<Relation> after = cached.Materialize(*expr);
  DWC_ASSERT_OK(after);
  Evaluator uncached(&env_);
  Result<Relation> fresh = uncached.Materialize(*expr);
  DWC_ASSERT_OK(fresh);
  EXPECT_TRUE(after->SameContentAs(*fresh));
  EXPECT_EQ(after->schema(), fresh->schema());
}

TEST_F(EvaluatorCacheTest, CommutedTwinHitRealignsColumns) {
  // R ⋈ S and S ⋈ R share a commutative class but emit different column
  // orders; a twin hit must be realigned to exactly what plain evaluation
  // of the requested tree produces.
  ExprRef rs = interner_.Intern(Expr::Join(Expr::Base("R"), Expr::Base("S")));
  ExprRef sr = interner_.Intern(Expr::Join(Expr::Base("S"), Expr::Base("R")));

  Evaluator cached = CachedEvaluator();
  DWC_ASSERT_OK(cached.Materialize(*rs));
  Result<Relation> twin = cached.Materialize(*sr);
  DWC_ASSERT_OK(twin);
  EXPECT_GT(cached.stats().cache_hits, 0u);

  Evaluator uncached(&env_);
  Result<Relation> fresh = uncached.Materialize(*sr);
  DWC_ASSERT_OK(fresh);
  EXPECT_EQ(twin->schema(), fresh->schema());
  EXPECT_TRUE(twin->SameContentAs(*fresh));
}

TEST_F(EvaluatorCacheTest, ZeroBudgetIsExactlyUncached) {
  ExprRef expr = interner_.Intern(Expr::Join(Expr::Base("R"), Expr::Base("S")));
  EvaluatorOptions options;  // cache_budget_tuples = 0.
  Evaluator evaluator(&env_, options, &interner_, &cache_);
  DWC_ASSERT_OK(evaluator.Materialize(*expr));
  DWC_ASSERT_OK(evaluator.Materialize(*expr));
  EXPECT_EQ(evaluator.stats().cache_hits, 0u);
  EXPECT_EQ(evaluator.stats().cache_misses, 0u);
  EXPECT_EQ(cache_.entries(), 0u);
}

TEST_F(EvaluatorCacheTest, UninternedExpressionsBypassTheCache) {
  ExprRef foreign =
      Expr::Join(Expr::Base("R"), Expr::Base("S"));  // Never interned.
  Evaluator cached = CachedEvaluator();
  DWC_ASSERT_OK(cached.Materialize(*foreign));
  DWC_ASSERT_OK(cached.Materialize(*foreign));
  EXPECT_EQ(cached.stats().cache_hits, 0u);
  EXPECT_EQ(cache_.entries(), 0u);
}

}  // namespace
}  // namespace dwc
