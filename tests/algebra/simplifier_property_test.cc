// Simplify() must be semantics-preserving: for random expressions and
// random states, the simplified expression evaluates to the same relation.
// Also checks idempotence (simplifying twice changes nothing).

#include "algebra/simplifier.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

// Wraps random expressions with constructs the simplifier targets, so the
// rules actually fire: empty operands, trivial selections, stacked
// projections, self-unions.
ExprRef Decorate(ExprRef expr, const Schema& schema, Rng* rng) {
  switch (rng->Below(6)) {
    case 0:
      return Expr::Select(Predicate::True(), expr);
    case 1:
      return Expr::Union(expr, Expr::Empty(schema));
    case 2:
      return Expr::Difference(expr, Expr::Empty(schema));
    case 3: {
      std::vector<std::string> all;
      for (const Attribute& attr : schema.attributes()) {
        all.push_back(attr.name);
      }
      return Expr::Project(all, expr);
    }
    case 4:
      return Expr::Union(expr, expr);
    default:
      return expr;
  }
}

class SimplifierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifierPropertyTest, SimplifiedExpressionIsEquivalent) {
  Rng rng(GetParam());
  for (CatalogShape shape : {CatalogShape::kChain, CatalogShape::kKeyedInds}) {
    std::shared_ptr<Catalog> catalog = MakeCatalog(shape);
    SchemaResolver resolver = ResolverFromCatalog(*catalog);
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Environment env = Environment::FromDatabase(*db);

    for (int round = 0; round < 30; ++round) {
      Result<ExprRef> base_expr = GenerateRandomQuery(*catalog, &rng);
      DWC_ASSERT_OK(base_expr);
      Result<Schema> schema = InferSchema(**base_expr, resolver);
      if (!schema.ok()) {
        continue;
      }
      ExprRef expr = Decorate(*base_expr, *schema, &rng);
      expr = Decorate(expr, *schema, &rng);

      ExprRef simplified = Simplify(expr, &resolver);
      Result<Relation> before = EvalExpr(*expr, env);
      Result<Relation> after = EvalExpr(*simplified, env);
      DWC_ASSERT_OK(before);
      DWC_ASSERT_OK(after);
      ASSERT_TRUE(testing::RelationsEqual(*after, *before))
          << "original:   " << expr->ToString()
          << "\nsimplified: " << simplified->ToString();

      // Idempotence.
      ExprRef twice = Simplify(simplified, &resolver);
      EXPECT_TRUE(twice->Equals(*simplified))
          << "not idempotent: " << simplified->ToString() << " vs "
          << twice->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifierPropertyTest,
                         ::testing::Values(3001, 3002, 3003, 3004));

TEST(SimplifierPropertyTest, SimplifyWithoutResolverIsAlsoSafe) {
  Rng rng(5005);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  SchemaResolver resolver = ResolverFromCatalog(*catalog);
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  Environment env = Environment::FromDatabase(*db);
  for (int round = 0; round < 40; ++round) {
    Result<ExprRef> expr = GenerateRandomQuery(*catalog, &rng);
    DWC_ASSERT_OK(expr);
    ExprRef simplified = Simplify(*expr);  // No resolver.
    Result<Relation> before = EvalExpr(**expr, env);
    Result<Relation> after = EvalExpr(*simplified, env);
    DWC_ASSERT_OK(before);
    DWC_ASSERT_OK(after);
    ASSERT_TRUE(testing::RelationsEqual(*after, *before))
        << (*expr)->ToString();
  }
}

}  // namespace
}  // namespace dwc
