#include "algebra/expr.h"

#include <gtest/gtest.h>

#include "algebra/rewriter.h"
#include "algebra/schema_inference.h"
#include "algebra/simplifier.h"
#include "relational/catalog.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

Schema Ab() { return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}); }
Schema Bc() { return Schema({{"b", ValueType::kInt}, {"c", ValueType::kInt}}); }

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DWC_ASSERT_OK(catalog_.AddRelation("R", Ab()));
    DWC_ASSERT_OK(catalog_.AddRelation("S", Bc()));
    resolver_ = ResolverFromCatalog(catalog_);
  }
  Catalog catalog_;
  SchemaResolver resolver_;
};

TEST_F(ExprTest, ToStringShapes) {
  ExprRef e = Expr::Project(
      {"a"}, Expr::Select(Predicate::AttrEq("b", Value::Int(1)),
                          Expr::Join(Expr::Base("R"), Expr::Base("S"))));
  EXPECT_EQ(e->ToString(), "project[a](select[b = 1]((R join S)))");
  EXPECT_EQ(Expr::Union(Expr::Base("R"), Expr::Base("R"))->ToString(),
            "(R union R)");
  EXPECT_EQ(Expr::Difference(Expr::Base("R"), Expr::Base("R"))->ToString(),
            "(R minus R)");
  EXPECT_EQ(Expr::Rename({{"a", "x"}}, Expr::Base("R"))->ToString(),
            "rename[a->x](R)");
  EXPECT_EQ(Expr::Empty(Ab())->ToString(), "empty[a, b]");
}

TEST_F(ExprTest, ReferencedNames) {
  ExprRef e = Expr::Union(Expr::Join(Expr::Base("R"), Expr::Base("S")),
                          Expr::Project({"b"}, Expr::Base("R")));
  EXPECT_EQ(e->ReferencedNames(), (std::set<std::string>{"R", "S"}));
  EXPECT_TRUE(Expr::Empty(Ab())->ReferencedNames().empty());
}

TEST_F(ExprTest, StructuralEquality) {
  ExprRef a = Expr::Project({"a"}, Expr::Base("R"));
  ExprRef b = Expr::Project({"a"}, Expr::Base("R"));
  ExprRef c = Expr::Project({"b"}, Expr::Base("R"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*Expr::Base("R")));
  EXPECT_TRUE(Expr::Select(Predicate::AttrEq("a", Value::Int(1)),
                           Expr::Base("R"))
                  ->Equals(*Expr::Select(
                      Predicate::AttrEq("a", Value::Int(1)), Expr::Base("R"))));
  EXPECT_FALSE(Expr::Select(Predicate::AttrEq("a", Value::Int(1)),
                            Expr::Base("R"))
                   ->Equals(*Expr::Select(
                       Predicate::AttrEq("a", Value::Int(2)),
                       Expr::Base("R"))));
}

TEST_F(ExprTest, SchemaInference) {
  Result<Schema> join =
      InferSchema(*Expr::Join(Expr::Base("R"), Expr::Base("S")), resolver_);
  DWC_ASSERT_OK(join);
  EXPECT_EQ(join->ToString(), "(a INT, b INT, c INT)");

  Result<Schema> project = InferSchema(
      *Expr::Project({"c", "a"}, Expr::Join(Expr::Base("R"), Expr::Base("S"))),
      resolver_);
  DWC_ASSERT_OK(project);
  EXPECT_EQ(project->ToString(), "(c INT, a INT)");

  Result<Schema> rename =
      InferSchema(*Expr::Rename({{"a", "x"}}, Expr::Base("R")), resolver_);
  DWC_ASSERT_OK(rename);
  EXPECT_EQ(rename->ToString(), "(x INT, b INT)");
}

TEST_F(ExprTest, SchemaInferenceErrors) {
  EXPECT_FALSE(InferSchema(*Expr::Base("Nope"), resolver_).ok());
  EXPECT_FALSE(
      InferSchema(*Expr::Project({"zz"}, Expr::Base("R")), resolver_).ok());
  EXPECT_FALSE(InferSchema(*Expr::Select(Predicate::AttrEq("c", Value::Int(0)),
                                         Expr::Base("R")),
                           resolver_)
                   .ok());
  EXPECT_FALSE(
      InferSchema(*Expr::Union(Expr::Base("R"), Expr::Base("S")), resolver_)
          .ok());
  // Rename collision: a -> b while b exists.
  EXPECT_FALSE(
      InferSchema(*Expr::Rename({{"a", "b"}}, Expr::Base("R")), resolver_)
          .ok());
}

TEST_F(ExprTest, SubstituteNamesRewritesLeaves) {
  ExprRef query = Expr::Project(
      {"a"}, Expr::Join(Expr::Base("R"), Expr::Base("S")));
  ExprRef inverse_r = Expr::Union(Expr::Base("C_R"), Expr::Base("V1"));
  ExprRef rewritten = SubstituteNames(query, {{"R", inverse_r}});
  EXPECT_EQ(rewritten->ToString(),
            "project[a](((C_R union V1) join S))");
  // Untouched trees are shared, not copied.
  ExprRef untouched = SubstituteNames(query, {{"X", inverse_r}});
  EXPECT_EQ(untouched.get(), query.get());
}

TEST_F(ExprTest, SimplifierRules) {
  ExprRef empty = Expr::Empty(Ab());
  ExprRef r = Expr::Base("R");
  // Union/difference with empty.
  EXPECT_EQ(Simplify(Expr::Union(empty, r))->ToString(), "R");
  EXPECT_EQ(Simplify(Expr::Union(r, empty))->ToString(), "R");
  EXPECT_EQ(Simplify(Expr::Difference(r, empty))->ToString(), "R");
  EXPECT_EQ(Simplify(Expr::Difference(empty, r))->kind(), Expr::Kind::kEmpty);
  // Union of equals.
  EXPECT_EQ(Simplify(Expr::Union(r, Expr::Base("R")))->ToString(), "R");
  // select[true] vanishes; nested selects conjoin.
  EXPECT_EQ(Simplify(Expr::Select(Predicate::True(), r))->ToString(), "R");
  ExprRef nested = Expr::Select(
      Predicate::AttrEq("a", Value::Int(1)),
      Expr::Select(Predicate::AttrEq("b", Value::Int(2)), r));
  EXPECT_EQ(Simplify(nested)->ToString(), "select[(a = 1 and b = 2)](R)");
  // Project over project collapses.
  ExprRef pp = Expr::Project({"a"}, Expr::Project({"a", "b"}, r));
  EXPECT_EQ(Simplify(pp)->ToString(), "project[a](R)");
  // Join with empty collapses when the resolver can type it.
  ExprRef join_empty = Expr::Join(r, Expr::Empty(Bc()));
  ExprRef simplified = Simplify(join_empty, &resolver_);
  EXPECT_EQ(simplified->kind(), Expr::Kind::kEmpty);
  EXPECT_EQ(simplified->empty_schema().ToString(), "(a INT, b INT, c INT)");
  // Identity projection vanishes with a resolver.
  ExprRef identity = Expr::Project({"a", "b"}, r);
  EXPECT_EQ(Simplify(identity, &resolver_)->ToString(), "R");
  // Difference of equal subtrees becomes empty with a resolver.
  ExprRef self_diff = Expr::Difference(r, Expr::Base("R"));
  EXPECT_EQ(Simplify(self_diff, &resolver_)->kind(), Expr::Kind::kEmpty);
}

TEST_F(ExprTest, PredicateRenameAndAttributes) {
  PredicateRef p = Predicate::And(
      Predicate::AttrsEq("a", "b"),
      Predicate::Or(Predicate::AttrEq("c", Value::Int(3)),
                    Predicate::Not(Predicate::True())));
  EXPECT_EQ(p->Attributes(), (AttrSet{"a", "b", "c"}));
  PredicateRef renamed = p->RenameAttrs({{"a", "x"}, {"c", "y"}});
  EXPECT_EQ(renamed->Attributes(), (AttrSet{"x", "b", "y"}));
  EXPECT_EQ(renamed->ToString(), "(x = b and (y = 3 or not (true)))");
}

TEST_F(ExprTest, PredicateEvalAllOperators) {
  Schema schema = Ab();
  Tuple tuple(std::vector<Value>{Value::Int(2), Value::Int(5)});
  auto eval = [&](CmpOp op, int64_t rhs) {
    Result<bool> result =
        Predicate::Cmp(Operand::Attr("a"), op, Operand::Const(Value::Int(rhs)))
            ->Eval(schema, tuple);
    EXPECT_TRUE(result.ok());
    return result.value();
  };
  EXPECT_TRUE(eval(CmpOp::kEq, 2));
  EXPECT_TRUE(eval(CmpOp::kNe, 3));
  EXPECT_TRUE(eval(CmpOp::kLt, 3));
  EXPECT_TRUE(eval(CmpOp::kLe, 2));
  EXPECT_TRUE(eval(CmpOp::kGt, 1));
  EXPECT_TRUE(eval(CmpOp::kGe, 2));
  EXPECT_FALSE(eval(CmpOp::kEq, 3));
  // Attribute-to-attribute comparison.
  Result<bool> ab = Predicate::AttrsEq("a", "b")->Eval(schema, tuple);
  DWC_ASSERT_OK(ab);
  EXPECT_FALSE(*ab);
  // Missing attribute errors.
  EXPECT_FALSE(
      Predicate::AttrEq("zz", Value::Int(0))->Eval(schema, tuple).ok());
}

}  // namespace
}  // namespace dwc
