#include "algebra/implication.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace dwc {
namespace {

bool ImpliesText(const std::string& p, const std::string& q) {
  Result<PredicateRef> pp = ParsePredicate(p);
  Result<PredicateRef> qq = ParsePredicate(q);
  EXPECT_TRUE(pp.ok()) << pp.status();
  EXPECT_TRUE(qq.ok()) << qq.status();
  return Implies(*pp, *qq);
}

TEST(ImplicationTest, Reflexive) {
  EXPECT_TRUE(ImpliesText("a = 1", "a = 1"));
  EXPECT_TRUE(ImpliesText("a >= 2 and b = 'x'", "b = 'x' and a >= 2"));
}

TEST(ImplicationTest, TrueIsTop) {
  EXPECT_TRUE(ImpliesText("a = 1", "true"));
  EXPECT_FALSE(ImpliesText("true", "a = 1"));
}

TEST(ImplicationTest, IntervalReasoning) {
  EXPECT_TRUE(ImpliesText("a = 5", "a >= 5"));
  EXPECT_TRUE(ImpliesText("a = 5", "a > 4"));
  EXPECT_TRUE(ImpliesText("a > 5", "a > 4"));
  EXPECT_TRUE(ImpliesText("a > 5", "a >= 5"));
  EXPECT_TRUE(ImpliesText("a >= 5", "a > 4"));
  EXPECT_TRUE(ImpliesText("a < 3", "a <= 3"));
  EXPECT_TRUE(ImpliesText("a <= 3", "a < 4"));
  EXPECT_FALSE(ImpliesText("a >= 5", "a > 5"));
  EXPECT_FALSE(ImpliesText("a > 4", "a > 5"));
  EXPECT_FALSE(ImpliesText("a <= 4", "a < 4"));
}

TEST(ImplicationTest, DisequalityFromIntervals) {
  EXPECT_TRUE(ImpliesText("a = 3", "a != 4"));
  EXPECT_TRUE(ImpliesText("a < 3", "a != 3"));
  EXPECT_TRUE(ImpliesText("a < 3", "a != 7"));
  EXPECT_TRUE(ImpliesText("a > 3", "a != 3"));
  EXPECT_FALSE(ImpliesText("a != 3", "a != 4"));
}

TEST(ImplicationTest, ConjunctionOnBothSides) {
  EXPECT_TRUE(ImpliesText("a = 1 and b = 2 and c = 3", "a = 1 and c = 3"));
  EXPECT_FALSE(ImpliesText("a = 1", "a = 1 and b = 2"));
  EXPECT_TRUE(ImpliesText("a > 2 and a < 9", "a > 0 and a != 0"));
}

TEST(ImplicationTest, DisjunctionHandling) {
  // p with OR: every disjunct must imply q.
  EXPECT_TRUE(ImpliesText("a = 1 or a = 2", "a <= 2"));
  EXPECT_FALSE(ImpliesText("a = 1 or a = 5", "a <= 2"));
  // q with OR: some disjunct must follow.
  EXPECT_TRUE(ImpliesText("a = 1", "a = 1 or a = 2"));
  EXPECT_TRUE(ImpliesText("a = 2 and b = 9", "b = 0 or a >= 2"));
  EXPECT_FALSE(ImpliesText("a = 3", "a = 1 or a = 2"));
}

TEST(ImplicationTest, NegationRewrites) {
  EXPECT_TRUE(ImpliesText("a >= 5", "not (a < 5)"));
  EXPECT_TRUE(ImpliesText("not (a < 5)", "a >= 5"));
  EXPECT_TRUE(ImpliesText("not (a = 3 or b = 4)", "a != 3"));
  EXPECT_FALSE(ImpliesText("not (a = 3)", "a = 3"));
}

TEST(ImplicationTest, OpaqueLiteralsMatchSyntactically) {
  EXPECT_TRUE(ImpliesText("a = b and c = 1", "a = b"));
  EXPECT_FALSE(ImpliesText("a = b", "b = c"));
}

TEST(ImplicationTest, MixedNumericTypes) {
  EXPECT_TRUE(ImpliesText("a = 3", "a >= 2.5"));
  EXPECT_TRUE(ImpliesText("a > 2.5", "a > 2"));
}

TEST(ImplicationTest, StringComparisons) {
  EXPECT_TRUE(ImpliesText("s = 'emea'", "s != 'apac'"));
  EXPECT_FALSE(ImpliesText("s != 'emea'", "s = 'apac'"));
}

// Soundness property: whenever Implies(p, q), every tuple satisfying p
// satisfies q (checked over a dense grid of single-attribute states).
TEST(ImplicationTest, SoundnessOnGrid) {
  Rng rng(808);
  Schema schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  auto random_pred = [&](auto&& self, int depth) -> PredicateRef {
    if (depth == 0 || rng.Chance(0.4)) {
      const char* attr = rng.Chance(0.5) ? "a" : "b";
      CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                     CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
      return Predicate::Cmp(Operand::Attr(attr), ops[rng.Below(6)],
                            Operand::Const(Value::Int(rng.Range(0, 4))));
    }
    switch (rng.Below(3)) {
      case 0:
        return Predicate::And(self(self, depth - 1), self(self, depth - 1));
      case 1:
        return Predicate::Or(self(self, depth - 1), self(self, depth - 1));
      default:
        return Predicate::Not(self(self, depth - 1));
    }
  };
  int implications_found = 0;
  for (int round = 0; round < 400; ++round) {
    PredicateRef p = random_pred(random_pred, 2);
    PredicateRef q = random_pred(random_pred, 2);
    if (!Implies(p, q)) {
      continue;
    }
    ++implications_found;
    for (int64_t a = -1; a <= 5; ++a) {
      for (int64_t b = -1; b <= 5; ++b) {
        Tuple tuple({Value::Int(a), Value::Int(b)});
        Result<bool> pv = p->Eval(schema, tuple);
        Result<bool> qv = q->Eval(schema, tuple);
        DWC_ASSERT_OK(pv);
        DWC_ASSERT_OK(qv);
        ASSERT_TRUE(!*pv || *qv)
            << "p = " << p->ToString() << ", q = " << q->ToString()
            << " at a=" << a << " b=" << b;
      }
    }
  }
  EXPECT_GT(implications_found, 10);  // The test must actually exercise hits.
}

}  // namespace
}  // namespace dwc
