#include "algebra/subplan_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "relational/relation.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::T;

std::shared_ptr<const Relation> MakeRel(int tuples) {
  auto rel = std::make_shared<Relation>(
      Schema({{"a", ValueType::kInt}}));
  for (int i = 0; i < tuples; ++i) {
    rel->Insert(T({I(i)}));
  }
  return rel;
}

TEST(SubplanCacheTest, MissThenHitThenStale) {
  SubplanCache cache;
  cache.set_budget(100);
  SubplanCache::Snapshot snapshot = {{7, 0}, {9, 3}};

  EXPECT_FALSE(cache.Lookup(1, snapshot).has_value());
  EXPECT_EQ(cache.Insert(1, 42, snapshot, MakeRel(5)), 0u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.cached_tuples(), 5u);

  auto hit = cache.Lookup(1, snapshot);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->producer_id, 42u);
  EXPECT_EQ(hit->rel->size(), 5u);

  // A bumped input version makes the entry stale; the failed lookup also
  // drops it.
  SubplanCache::Snapshot bumped = {{7, 0}, {9, 4}};
  EXPECT_FALSE(cache.Lookup(1, bumped).has_value());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SubplanCacheTest, FreshUidIsNotTheOldRelation) {
  // Same versions, different uid (a reconstructed/copied relation): miss.
  SubplanCache cache;
  cache.set_budget(100);
  cache.Insert(1, 1, {{7, 0}}, MakeRel(1));
  EXPECT_FALSE(cache.Lookup(1, {{8, 0}}).has_value());
}

TEST(SubplanCacheTest, ZeroBudgetDisables) {
  SubplanCache cache;
  EXPECT_EQ(cache.Insert(1, 1, {{7, 0}}, MakeRel(1)), 0u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup(1, {{7, 0}}).has_value());
}

TEST(SubplanCacheTest, SettingBudgetToZeroClears) {
  SubplanCache cache;
  cache.set_budget(100);
  cache.Insert(1, 1, {{7, 0}}, MakeRel(5));
  cache.set_budget(0);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.cached_tuples(), 0u);
}

TEST(SubplanCacheTest, OversizedEntryIsNeverStored) {
  SubplanCache cache;
  cache.set_budget(3);
  EXPECT_EQ(cache.Insert(1, 1, {{7, 0}}, MakeRel(4)), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(SubplanCacheTest, LruEvictionUnderPressure) {
  SubplanCache cache;
  cache.set_budget(10);
  cache.Insert(1, 1, {{7, 0}}, MakeRel(4));
  cache.Insert(2, 2, {{7, 0}}, MakeRel(4));
  // Touch cid 1 so cid 2 is the LRU victim.
  ASSERT_TRUE(cache.Lookup(1, {{7, 0}}).has_value());
  EXPECT_EQ(cache.Insert(3, 3, {{7, 0}}, MakeRel(4)), 1u);
  EXPECT_TRUE(cache.Lookup(1, {{7, 0}}).has_value());
  EXPECT_FALSE(cache.Lookup(2, {{7, 0}}).has_value());
  EXPECT_TRUE(cache.Lookup(3, {{7, 0}}).has_value());
  EXPECT_LE(cache.cached_tuples(), 10u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SubplanCacheTest, ShrinkingBudgetEvicts) {
  SubplanCache cache;
  cache.set_budget(10);
  cache.Insert(1, 1, {{7, 0}}, MakeRel(4));
  cache.Insert(2, 2, {{7, 0}}, MakeRel(4));
  cache.set_budget(4);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_LE(cache.cached_tuples(), 4u);
}

TEST(SubplanCacheTest, SameCidInsertReplaces) {
  SubplanCache cache;
  cache.set_budget(100);
  cache.Insert(1, 1, {{7, 0}}, MakeRel(5));
  cache.Insert(1, 1, {{7, 1}}, MakeRel(2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.cached_tuples(), 2u);
  auto hit = cache.Lookup(1, {{7, 1}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rel->size(), 2u);
}

TEST(SubplanCacheTest, ClearDropsEverythingButKeepsStats) {
  SubplanCache cache;
  cache.set_budget(100);
  cache.Insert(1, 1, {{7, 0}}, MakeRel(5));
  ASSERT_TRUE(cache.Lookup(1, {{7, 0}}).has_value());
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.cached_tuples(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace dwc
