// Selection pushdown: shape tests plus randomized equivalence.

#include "algebra/optimizer.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "parser/parser.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeCatalog(CatalogShape::kChain);  // R(X,Y) S(Y,Z) T(Z,W)
    resolver_ = ResolverFromCatalog(*catalog_);
  }

  std::string Optimized(const std::string& text) {
    Result<ExprRef> expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return PushDownSelections(*expr, resolver_)->ToString();
  }

  std::shared_ptr<Catalog> catalog_;
  SchemaResolver resolver_;
};

TEST_F(OptimizerTest, PushesThroughProjection) {
  EXPECT_EQ(Optimized("select[X = 1](project[X](R))"),
            "project[X](select[X = 1](R))");
}

TEST_F(OptimizerTest, PushesThroughUnionToBothSides) {
  EXPECT_EQ(Optimized("select[X = 1](project[X](R) union project[X](R))"),
            "(project[X](select[X = 1](R)) union "
            "project[X](select[X = 1](R)))");
}

TEST_F(OptimizerTest, PushesIntoDifferenceLeftOnly) {
  EXPECT_EQ(Optimized("select[Y = 2](project[Y](R) minus project[Y](S))"),
            "(project[Y](select[Y = 2](R)) minus project[Y](S))");
}

TEST_F(OptimizerTest, SplitsJoinConjunctsByScope) {
  // X lives in R, Z lives in S; Y is shared and goes to both sides.
  EXPECT_EQ(Optimized("select[X = 1 and Z = 2 and Y = 3](R join S)"),
            "(select[(X = 1 and Y = 3)](R) join "
            "select[(Z = 2 and Y = 3)](S))");
}

TEST_F(OptimizerTest, MergesStackedSelections) {
  EXPECT_EQ(Optimized("select[X = 1](select[Y = 2](R))"),
            "select[(X = 1 and Y = 2)](R)");
}

TEST_F(OptimizerTest, MapsThroughRename) {
  EXPECT_EQ(Optimized("select[A = 1](rename[X -> A](R))"),
            "rename[X->A](select[X = 1](R))");
}

TEST_F(OptimizerTest, SelectionOverEmptyVanishes) {
  EXPECT_EQ(Optimized("select[a = 1](empty[a INT])"), "empty[a]");
}

TEST_F(OptimizerTest, CrossSideConjunctStaysOnTop) {
  // X = Z spans both sides of the join: cannot be pushed.
  EXPECT_EQ(Optimized("select[X = Z](R join S)"),
            "select[X = Z]((R join S))");
}

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, PushdownPreservesSemantics) {
  Rng rng(GetParam());
  for (CatalogShape shape : {CatalogShape::kChain, CatalogShape::kKeyedInds}) {
    std::shared_ptr<Catalog> catalog = MakeCatalog(shape);
    SchemaResolver resolver = ResolverFromCatalog(*catalog);
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Environment env = Environment::FromDatabase(*db);
    for (int round = 0; round < 30; ++round) {
      Result<ExprRef> expr = GenerateRandomQuery(*catalog, &rng);
      DWC_ASSERT_OK(expr);
      ExprRef optimized = PushDownSelections(*expr, resolver);
      Result<Relation> before = EvalExpr(**expr, env);
      Result<Relation> after = EvalExpr(*optimized, env);
      DWC_ASSERT_OK(before);
      DWC_ASSERT_OK(after);
      ASSERT_TRUE(testing::RelationsEqual(*after, *before))
          << "original:  " << (*expr)->ToString()
          << "\noptimized: " << optimized->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Values(71, 72, 73, 74, 75));

TEST(IndexedSelectionTest, EqualityProbesCountAsIndexProbes) {
  Relation rel(Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  for (int64_t i = 0; i < 300; ++i) {
    rel.Insert(Tuple({Value::Int(i % 20), Value::Int(i)}));
  }
  Environment env;
  env.Bind("R", &rel);
  Result<ExprRef> expr = ParseExpr("select[a = 7 and b >= 100](R)");
  DWC_ASSERT_OK(expr);
  Evaluator evaluator(&env);
  Result<Relation> out = evaluator.Materialize(**expr);
  DWC_ASSERT_OK(out);
  EXPECT_EQ(evaluator.stats().index_probes, 1u);
  // Ground truth by scan.
  EvaluatorOptions options;
  options.enable_pushdown = false;
  Evaluator plain(&env, options);
  Result<Relation> reference = plain.Materialize(**expr);
  DWC_ASSERT_OK(reference);
  EXPECT_TRUE(testing::RelationsEqual(*out, *reference));
  EXPECT_FALSE(out->empty());
}

TEST(IndexedSelectionTest, MixedNumericEqualityStillMatches) {
  // 3 and 3.0 hash identically and compare equal: the index probe must see
  // through the type widening.
  Relation rel(Schema({{"a", ValueType::kDouble}}));
  rel.Insert(Tuple({Value::Double(3.0)}));
  Environment env;
  env.Bind("R", &rel);
  Result<ExprRef> expr = ParseExpr("select[a = 3](R)");
  DWC_ASSERT_OK(expr);
  Result<Relation> out = EvalExpr(**expr, env);
  DWC_ASSERT_OK(out);
  EXPECT_EQ(out->size(), 1u);
}

}  // namespace
}  // namespace dwc
