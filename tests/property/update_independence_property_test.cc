// E10 (DESIGN.md) — Theorem 4.1 / Figure 3: the update commuting diagram
// w' = W(u(d)) holds under random update streams, with zero source queries,
// and the three maintenance strategies agree.

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::CatalogShapeName;
using ::dwc::testing::MakeCatalog;

class UpdateIndependencePropertyTest
    : public ::testing::TestWithParam<CatalogShape> {};

TEST_P(UpdateIndependencePropertyTest, StreamsStayConsistent) {
  Rng rng(5150 + static_cast<uint64_t>(GetParam()));
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());
  std::vector<std::string> relations = catalog->RelationNames();

  for (int round = 0; round < 5; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());

    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Source source(*db);
    Result<Warehouse> incremental = Warehouse::Load(
        spec_ptr, source.db(), MaintenanceStrategy::kIncremental);
    Result<Warehouse> recompute = Warehouse::Load(
        spec_ptr, source.db(), MaintenanceStrategy::kRecomputeFromInverse);
    DWC_ASSERT_OK(incremental);
    DWC_ASSERT_OK(recompute);

    for (int step = 0; step < 20; ++step) {
      const std::string& relation =
          relations[rng.Below(relations.size())];
      Result<UpdateOp> op =
          GenerateRandomUpdate(source.db(), relation, &rng);
      DWC_ASSERT_OK(op);
      Result<CanonicalDelta> delta = source.Apply(*op);
      DWC_ASSERT_OK(delta);
      // Source state must stay constraint-consistent (update generator
      // contract).
      DWC_ASSERT_OK(source.db().ValidateConstraints());
      if (delta->empty()) {
        continue;
      }
      DWC_ASSERT_OK(incremental->Integrate(*delta));
      DWC_ASSERT_OK(recompute->Integrate(*delta));

      // Figure 3: the maintained state equals W(u(d)).
      DWC_ASSERT_OK(CheckConsistency(*incremental, source.db()));
      ASSERT_TRUE(incremental->state().SameStateAs(recompute->state()))
          << "step " << step << "\n"
          << spec_ptr->ToString();
    }
    // Update independence: zero queries against the source.
    EXPECT_EQ(source.query_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UpdateIndependencePropertyTest,
    ::testing::Values(CatalogShape::kChain, CatalogShape::kKeyed,
                      CatalogShape::kKeyedInds),
    [](const ::testing::TestParamInfo<CatalogShape>& info) {
      return CatalogShapeName(info.param);
    });

TEST(QuerySourceBaselineTest, CountsSourceQueries) {
  // The traditional integrator *does* query the sources: the counter is the
  // discriminating observable between the paper's approach and the baseline.
  Rng rng(31337);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  Result<std::vector<ViewDef>> views = GenerateRandomPsjViews(*catalog, &rng);
  DWC_ASSERT_OK(views);
  Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
  DWC_ASSERT_OK(spec);
  auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  Source source(*db);
  Result<Warehouse> baseline = Warehouse::Load(
      spec_ptr, source.db(), MaintenanceStrategy::kQuerySource);
  DWC_ASSERT_OK(baseline);

  Result<UpdateOp> op = GenerateRandomUpdate(source.db(), "R", &rng);
  DWC_ASSERT_OK(op);
  Result<CanonicalDelta> delta = source.Apply(*op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(baseline->Integrate(*delta, &source));
  EXPECT_GT(source.query_count(), 0u);
  DWC_ASSERT_OK(CheckConsistency(*baseline, source.db()));
}

}  // namespace
}  // namespace dwc
