// E9 (DESIGN.md) — Theorem 3.1 / Figure 2: the commuting diagram
// Q(d) = Q̄(W(d)) for randomly generated queries over random states.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "core/query_translation.h"
#include "core/warehouse_spec.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::CatalogShapeName;
using ::dwc::testing::MakeCatalog;

class QueryIndependencePropertyTest
    : public ::testing::TestWithParam<CatalogShape> {};

TEST_P(QueryIndependencePropertyTest, DiagramCommutes) {
  Rng rng(2024 + static_cast<uint64_t>(GetParam()));
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());

  for (int round = 0; round < 8; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());

    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, *db);
    DWC_ASSERT_OK(warehouse);
    Environment source_env = Environment::FromDatabase(*db);

    for (int q = 0; q < 10; ++q) {
      Result<ExprRef> query = GenerateRandomQuery(*catalog, &rng);
      DWC_ASSERT_OK(query);
      Result<Relation> direct = EvalExpr(**query, source_env);
      DWC_ASSERT_OK(direct);
      Result<Relation> via_warehouse = warehouse->AnswerQuery(*query);
      DWC_ASSERT_OK(via_warehouse);
      ASSERT_TRUE(testing::RelationsEqual(*via_warehouse, *direct))
          << "round " << round << " query " << (*query)->ToString()
          << "\nwarehouse:\n"
          << spec_ptr->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QueryIndependencePropertyTest,
    ::testing::Values(CatalogShape::kChain, CatalogShape::kKeyed,
                      CatalogShape::kKeyedInds),
    [](const ::testing::TestParamInfo<CatalogShape>& info) {
      return CatalogShapeName(info.param);
    });

}  // namespace
}  // namespace dwc
