// Property: thread count is unobservable. Random PSJ workloads over random
// databases, evaluated and integrated at 1, 2, 4 and 8 threads (parallel
// thresholds forced low so the kernels genuinely fan out), produce
// digest-identical warehouse states after every update — and the same
// holds through the durable storage stack under injected crashes: a
// FaultVfs crash during a parallel run recovers to exactly a committed
// serial-oracle state. Runs under TSan in CI (ctest -L dwc_tsan).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/warehouse_spec.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::CatalogShapeName;
using ::dwc::testing::MakeCatalog;

const size_t kThreadCounts[] = {1, 2, 4, 8};

EvaluatorOptions ForcedParallel(size_t threads) {
  EvaluatorOptions options;
  options.num_threads = threads;
  options.min_parallel_tuples = 1;
  options.morsel_size = 16;
  return options;
}

uint64_t Fingerprint(const Warehouse& warehouse) {
  return StateDigest(warehouse.state()).Combined();
}

class ParallelDeterminismPropertyTest
    : public ::testing::TestWithParam<CatalogShape> {};

// In-memory: the same random update stream replayed at every thread count
// yields the same digest after every single step.
TEST_P(ParallelDeterminismPropertyTest, RandomWorkloadsDigestIdentical) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());
  std::vector<std::string> relations = catalog->RelationNames();

  for (int round = 0; round < 3; ++round) {
    Rng setup_rng(910 + 37 * static_cast<uint64_t>(GetParam()) +
                  static_cast<uint64_t>(round));
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &setup_rng);
    DWC_ASSERT_OK(views);
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
    Result<Database> db = GenerateRandomDatabase(catalog, &setup_rng);
    DWC_ASSERT_OK(db);

    // One run per thread count over identical streams (Rng reseeded, and
    // the source state evolves identically, so the generated ops match).
    std::vector<std::vector<uint64_t>> digests;
    for (size_t threads : kThreadCounts) {
      Source source(*db);
      Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
      DWC_ASSERT_OK(warehouse);
      warehouse->SetEvaluatorOptions(ForcedParallel(threads));
      Rng stream_rng(5000 + static_cast<uint64_t>(round));
      std::vector<uint64_t> trace;
      for (int step = 0; step < 12; ++step) {
        const std::string& relation =
            relations[stream_rng.Below(relations.size())];
        Result<UpdateOp> op =
            GenerateRandomUpdate(source.db(), relation, &stream_rng);
        DWC_ASSERT_OK(op);
        Result<CanonicalDelta> delta = source.Apply(*op);
        DWC_ASSERT_OK(delta);
        if (!delta->empty()) {
          DWC_ASSERT_OK(warehouse->Integrate(*delta));
        }
        trace.push_back(Fingerprint(*warehouse));
      }
      DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
      digests.push_back(std::move(trace));
    }
    for (size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0])
          << "round " << round << ": " << kThreadCounts[i]
          << " threads diverged from serial";
    }
  }
}

// Durable: a parallel warehouse behind DurableWarehouse over a FaultVfs,
// crashed at injected I/O points, recovers to a state whose digest appears
// in the *serial* run's oracle — the pool must not leak nondeterminism
// into what reaches the disk.
TEST_P(ParallelDeterminismPropertyTest, CrashRecoveryMatchesSerialOracle) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());
  std::vector<std::string> relations = catalog->RelationNames();
  Rng setup_rng(777 + static_cast<uint64_t>(GetParam()));
  Result<std::vector<ViewDef>> views =
      GenerateRandomPsjViews(*catalog, &setup_rng);
  DWC_ASSERT_OK(views);
  Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
  DWC_ASSERT_OK(spec);
  auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
  Result<Database> db = GenerateRandomDatabase(catalog, &setup_rng);
  DWC_ASSERT_OK(db);

  constexpr int kSteps = 6;
  // Runs the workload at `threads` over `vfs` until done or crash; records
  // the digest after every durable sequence when `digest_by_seq` is given.
  auto run = [&](FaultVfs* vfs, size_t threads,
                 std::map<uint64_t, uint64_t>* digest_by_seq) -> Status {
    Source source(*db, "s1");
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
    DWC_RETURN_IF_ERROR(warehouse.status());
    warehouse->SetEvaluatorOptions(ForcedParallel(threads));
    Result<std::unique_ptr<DurableWarehouse>> durable =
        DurableWarehouse::Bootstrap(
            vfs, "wh", &warehouse.value(),
            JournalStamp{source.epoch(), source.last_sequence()});
    DWC_RETURN_IF_ERROR(durable.status());
    if (digest_by_seq != nullptr) {
      (*digest_by_seq)[source.last_sequence()] = Fingerprint(*warehouse);
    }
    Rng stream_rng(8800);
    for (int step = 0; step < kSteps; ++step) {
      const std::string& relation =
          relations[stream_rng.Below(relations.size())];
      Result<UpdateOp> op =
          GenerateRandomUpdate(source.db(), relation, &stream_rng);
      DWC_RETURN_IF_ERROR(op.status());
      Result<CanonicalDelta> delta = source.Apply(*op);
      DWC_RETURN_IF_ERROR(delta.status());
      DWC_RETURN_IF_ERROR((*durable)->Integrate(*delta, &source));
      if (digest_by_seq != nullptr) {
        (*digest_by_seq)[source.last_sequence()] = Fingerprint(*warehouse);
      }
    }
    return Status::Ok();
  };

  // Serial oracle over a faultless VFS.
  std::map<uint64_t, uint64_t> digest_by_seq;
  uint64_t total_ops = 0;
  {
    FaultVfs vfs;
    DWC_ASSERT_OK(run(&vfs, 1, &digest_by_seq));
    total_ops = vfs.op_count();
  }
  ASSERT_GT(total_ops, 10u);

  // Crash the 4-thread run at a spread of I/O points (the full per-op
  // matrix lives in crash_matrix_test; here the subject is the pool, so a
  // stride sample keeps the property suite fast).
  for (uint64_t crash_at = 1; crash_at < total_ops; crash_at += 5) {
    SCOPED_TRACE(StrCat("crash at op ", crash_at, " of ", total_ops));
    StorageFaultProfile profile;
    profile.seed = crash_at;
    FaultVfs vfs(profile);
    vfs.ScheduleCrashAtOp(crash_at);
    Status status = run(&vfs, 4, nullptr);
    ASSERT_FALSE(status.ok());  // The injected crash always fires.
    ASSERT_TRUE(vfs.crashed());
    vfs.CrashAndLose();

    Result<DurableWarehouse::Resumed> resumed =
        DurableWarehouse::Resume(&vfs, "wh");
    if (!resumed.ok()) {
      continue;  // Crash before the bootstrap checkpoint: nothing durable.
    }
    const uint64_t sequence = resumed->recovered.report.resume.sequence;
    auto oracle = digest_by_seq.find(sequence);
    ASSERT_NE(oracle, digest_by_seq.end())
        << "recovered to unknown sequence " << sequence;
    EXPECT_EQ(Fingerprint(*resumed->recovered.restored.warehouse),
              oracle->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelDeterminismPropertyTest,
    ::testing::Values(CatalogShape::kChain, CatalogShape::kKeyed,
                      CatalogShape::kKeyedInds),
    [](const ::testing::TestParamInfo<CatalogShape>& info) {
      return CatalogShapeName(info.param);
    });

}  // namespace
}  // namespace dwc
