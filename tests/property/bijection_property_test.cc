// E7 (DESIGN.md) — Proposition 2.1: V together with its computed complement
// induces a one-to-one mapping between database states and warehouse states.
// We verify the stronger constructive form on random instances: the inverse
// expressions reconstruct every base relation exactly, for random view sets,
// random states, with and without constraints.

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::CatalogShapeName;
using ::dwc::testing::MakeCatalog;

struct BijectionCase {
  CatalogShape shape;
  bool use_constraints;
  uint64_t seed;
};

class BijectionPropertyTest : public ::testing::TestWithParam<BijectionCase> {
};

TEST_P(BijectionPropertyTest, InverseRoundTripsRandomStates) {
  const BijectionCase& param = GetParam();
  Rng rng(param.seed);
  std::shared_ptr<Catalog> catalog = MakeCatalog(param.shape);

  for (int round = 0; round < 12; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    ComplementOptions options;
    options.use_constraints = param.use_constraints;
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(catalog, *views, options);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());

    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, *db);
    DWC_ASSERT_OK(warehouse);
    Result<Database> reconstructed = warehouse->ReconstructSources();
    DWC_ASSERT_OK(reconstructed);
    for (const std::string& base : catalog->RelationNames()) {
      ASSERT_TRUE(testing::RelationsEqual(
          *reconstructed->FindRelation(base), *db->FindRelation(base)))
          << "round " << round << " base " << base << "\nviews:\n"
          << spec_ptr->ToString();
    }
  }
}

std::vector<BijectionCase> AllCases() {
  std::vector<BijectionCase> cases;
  uint64_t seed = 1000;
  for (CatalogShape shape : {CatalogShape::kChain, CatalogShape::kKeyed,
                             CatalogShape::kKeyedInds}) {
    for (bool constraints : {false, true}) {
      cases.push_back(BijectionCase{shape, constraints, seed});
      seed += 17;
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BijectionPropertyTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<BijectionCase>& info) {
      return std::string(CatalogShapeName(info.param.shape)) +
             (info.param.use_constraints ? "WithConstraints" : "Plain");
    });

TEST(BijectionDistinctStatesTest, DistinctStatesDistinctWarehouseStates) {
  // The literal Proposition 2.1 statement on sampled pairs: d != d' implies
  // W(d) != W(d') once the complement is added.
  Rng rng(99);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  Result<std::vector<ViewDef>> views = GenerateRandomPsjViews(*catalog, &rng);
  DWC_ASSERT_OK(views);
  Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
  DWC_ASSERT_OK(spec);
  auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());

  std::vector<Database> states;
  std::vector<Database> warehouse_states;
  for (int i = 0; i < 10; ++i) {
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, *db);
    DWC_ASSERT_OK(warehouse);
    states.push_back(std::move(db).value());
    warehouse_states.push_back(warehouse->state());
  }
  for (size_t i = 0; i < states.size(); ++i) {
    for (size_t j = i + 1; j < states.size(); ++j) {
      if (!states[i].SameStateAs(states[j])) {
        EXPECT_FALSE(warehouse_states[i].SameStateAs(warehouse_states[j]))
            << "states " << i << " and " << j;
      }
    }
  }
}

}  // namespace
}  // namespace dwc
