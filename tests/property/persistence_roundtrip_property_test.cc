// Property: WarehouseToScript ∘ WarehouseFromScript is the identity on
// warehouse states — for random view sets over random databases, across
// catalog shapes and seeds. The DSL checkpoint is the storage layer's
// snapshot format (storage/checkpoint.h), so this round-trip is what makes
// an atomic checkpoint actually restorable.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/warehouse_spec.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/persistence.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::CatalogShapeName;
using ::dwc::testing::MakeCatalog;

struct RoundTripCase {
  CatalogShape shape;
  bool use_constraints;
  uint64_t seed;
};

class PersistenceRoundTripPropertyTest
    : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(PersistenceRoundTripPropertyTest, ScriptRoundTripsRandomWorkloads) {
  const RoundTripCase& param = GetParam();
  Rng rng(param.seed);
  std::shared_ptr<Catalog> catalog = MakeCatalog(param.shape);

  for (int round = 0; round < 8; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    ComplementOptions options;
    options.use_constraints = param.use_constraints;
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views, options);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, *db);
    DWC_ASSERT_OK(warehouse);

    Result<std::string> script = WarehouseToScript(*warehouse);
    DWC_ASSERT_OK(script);
    // The script does not record complement options; restoring under
    // different options would legitimately rebuild a different complement,
    // so the dump-time options are part of the restore contract.
    Result<RestoredWarehouse> restored = WarehouseFromScript(
        *script, MaintenanceStrategy::kIncremental, options);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString()
                               << "\nround " << round << "\nscript:\n"
                               << *script;
    EXPECT_TRUE(
        restored->warehouse->state().SameStateAs(warehouse->state()))
        << "round " << round << "\nviews:\n" << spec_ptr->ToString();
    EXPECT_TRUE(restored->source->db().SameStateAs(*db))
        << "round " << round;
    DWC_ASSERT_OK(
        CheckConsistency(*restored->warehouse, restored->source->db()));

    // The restored checkpoint is itself checkpointable, and the second
    // script describes the identical state (dump is deterministic).
    Result<std::string> again = WarehouseToScript(*restored->warehouse);
    DWC_ASSERT_OK(again);
    EXPECT_EQ(*again, *script) << "round " << round;
  }
}

std::vector<RoundTripCase> AllCases() {
  std::vector<RoundTripCase> cases;
  uint64_t seed = 4242;
  for (CatalogShape shape : {CatalogShape::kChain, CatalogShape::kKeyed,
                             CatalogShape::kKeyedInds}) {
    for (bool constraints : {false, true}) {
      cases.push_back(RoundTripCase{shape, constraints, seed});
      seed += 23;
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PersistenceRoundTripPropertyTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return std::string(CatalogShapeName(info.param.shape)) +
             (info.param.use_constraints ? "WithConstraints" : "Plain");
    });

}  // namespace
}  // namespace dwc
