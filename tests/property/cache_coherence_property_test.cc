// Property: the subplan recycler cache is unobservable. Random PSJ
// workloads with interleaved deltas and translated queries, run with the
// cache disabled (the pre-cache oracle), with a large budget, with a tiny
// eviction-thrashing budget, and in combination with the parallel kernels,
// produce digest-identical warehouse states after every update and
// digest-identical query answers (column order included — TupleDigest is
// position-sensitive). And the cache is purely derived state: a durable
// warehouse resumed from disk starts with a cold cache.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/warehouse_spec.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

struct CacheConfig {
  const char* name;
  size_t budget;
  size_t threads;
};

// The first config is the oracle: cache disabled, serial — byte-for-byte
// the pre-cache evaluation pipeline.
const CacheConfig kConfigs[] = {
    {"uncached_serial", 0, 1},
    {"cached_serial", 1 << 20, 1},
    {"cached_tiny_budget", 48, 1},
    {"cached_parallel", 1 << 20, 4},
};

EvaluatorOptions MakeOptions(const CacheConfig& config) {
  EvaluatorOptions options;
  options.cache_budget_tuples = config.budget;
  options.num_threads = config.threads;
  if (config.threads > 1) {
    // Force the kernels to genuinely fan out on small inputs, so cache
    // misses are evaluated by the parallel paths.
    options.min_parallel_tuples = 1;
    options.morsel_size = 16;
  }
  return options;
}

uint64_t Fingerprint(const Warehouse& warehouse) {
  return StateDigest(warehouse.state()).Combined();
}

class CacheCoherencePropertyTest
    : public ::testing::TestWithParam<CatalogShape> {};

TEST_P(CacheCoherencePropertyTest, DeltasAndQueriesDigestIdentical) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());
  std::vector<std::string> relations = catalog->RelationNames();

  for (int round = 0; round < 3; ++round) {
    Rng setup_rng(4100 + 37 * static_cast<uint64_t>(GetParam()) +
                  static_cast<uint64_t>(round));
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &setup_rng);
    DWC_ASSERT_OK(views);
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
    Result<Database> db = GenerateRandomDatabase(catalog, &setup_rng);
    DWC_ASSERT_OK(db);

    // A fixed pool of translated queries, re-answered after every delta:
    // the repeated-query pattern the recycler is built for.
    std::vector<ExprRef> queries;
    Rng query_rng(6200 + static_cast<uint64_t>(round));
    for (int q = 0; q < 3; ++q) {
      Result<ExprRef> query = GenerateRandomQuery(*catalog, &query_rng);
      DWC_ASSERT_OK(query);
      queries.push_back(std::move(query).value());
    }

    std::vector<std::vector<uint64_t>> traces;
    for (const CacheConfig& config : kConfigs) {
      SCOPED_TRACE(StrCat("round ", round, ", config ", config.name));
      Source source(*db);
      Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
      DWC_ASSERT_OK(warehouse);
      warehouse->SetEvaluatorOptions(MakeOptions(config));

      Rng stream_rng(7300 + static_cast<uint64_t>(round));
      std::vector<uint64_t> trace;
      for (int step = 0; step < 10; ++step) {
        const std::string& relation =
            relations[stream_rng.Below(relations.size())];
        Result<UpdateOp> op =
            GenerateRandomUpdate(source.db(), relation, &stream_rng);
        DWC_ASSERT_OK(op);
        Result<CanonicalDelta> delta = source.Apply(*op);
        DWC_ASSERT_OK(delta);
        if (!delta->empty()) {
          DWC_ASSERT_OK(warehouse->Integrate(*delta));
        }
        trace.push_back(Fingerprint(*warehouse));
        for (const ExprRef& query : queries) {
          Result<Relation> answer = warehouse->AnswerQuery(query);
          DWC_ASSERT_OK(answer);
          trace.push_back(RelationDigest(*answer));
        }
        // The budget is a hard ceiling at every step, not just at the end.
        EXPECT_LE(warehouse->subplan_cache().cached_tuples(),
                  config.budget);
      }
      DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
      if (config.budget == 0) {
        // The oracle never touches the cache.
        EXPECT_EQ(warehouse->subplan_cache().stats().hits +
                      warehouse->subplan_cache().stats().misses,
                  0u);
      } else if (config.budget > 1000) {
        // Re-answering a fixed query pool against unchanged state must
        // recycle rather than re-evaluate.
        EXPECT_GT(warehouse->subplan_cache().stats().hits, 0u);
      }
      traces.push_back(std::move(trace));
    }
    for (size_t i = 1; i < traces.size(); ++i) {
      EXPECT_EQ(traces[i], traces[0])
          << "round " << round << ": config '" << kConfigs[i].name
          << "' diverged from the uncached oracle";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CacheCoherencePropertyTest,
                         ::testing::Values(CatalogShape::kChain,
                                           CatalogShape::kKeyed,
                                           CatalogShape::kKeyedInds),
                         [](const ::testing::TestParamInfo<CatalogShape>& i) {
                           return ::dwc::testing::CatalogShapeName(i.param);
                         });

// The cache is never checkpointed: a warehouse resumed from durable
// storage starts cold, then warms up again from scratch.
TEST(CacheCoherenceTest, ResumeStartsCold) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kKeyed);
  std::vector<std::string> relations = catalog->RelationNames();
  Rng rng(9100);
  Result<std::vector<ViewDef>> views = GenerateRandomPsjViews(*catalog, &rng);
  DWC_ASSERT_OK(views);
  Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
  DWC_ASSERT_OK(spec);
  auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
  Result<Database> db = GenerateRandomDatabase(catalog, &rng);
  DWC_ASSERT_OK(db);
  Result<ExprRef> query = GenerateRandomQuery(*catalog, &rng);
  DWC_ASSERT_OK(query);

  FaultVfs vfs;
  Source source(*db, "s1");
  Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
  DWC_ASSERT_OK(warehouse);
  EvaluatorOptions options;
  options.cache_budget_tuples = 1 << 20;
  warehouse->SetEvaluatorOptions(options);
  Result<std::unique_ptr<DurableWarehouse>> durable =
      DurableWarehouse::Bootstrap(
          &vfs, "wh", &warehouse.value(),
          JournalStamp{source.epoch(), source.last_sequence()});
  DWC_ASSERT_OK(durable);

  // Integrate a few deltas and answer the query repeatedly to populate the
  // live cache.
  for (int step = 0; step < 4; ++step) {
    const std::string& relation = relations[rng.Below(relations.size())];
    Result<UpdateOp> op = GenerateRandomUpdate(source.db(), relation, &rng);
    DWC_ASSERT_OK(op);
    Result<CanonicalDelta> delta = source.Apply(*op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK((*durable)->Integrate(*delta, &source));
    DWC_ASSERT_OK(warehouse->AnswerQuery(*query));
    DWC_ASSERT_OK(warehouse->AnswerQuery(*query));
  }
  ASSERT_GT(warehouse->subplan_cache().entries(), 0u);
  const uint64_t live_fingerprint = Fingerprint(*warehouse);

  Result<DurableWarehouse::Resumed> resumed =
      DurableWarehouse::Resume(&vfs, "wh");
  DWC_ASSERT_OK(resumed);
  Warehouse& revived = *resumed->recovered.restored.warehouse;
  EXPECT_EQ(Fingerprint(revived), live_fingerprint);
  // Cold: no entries, no counters, no budget (options are not persisted).
  EXPECT_EQ(revived.subplan_cache().entries(), 0u);
  EXPECT_EQ(revived.subplan_cache().stats().hits, 0u);
  EXPECT_EQ(revived.subplan_cache().stats().misses, 0u);

  // Warming up again from scratch converges to the same answers.
  revived.SetEvaluatorOptions(options);
  Result<Relation> cold = revived.AnswerQuery(*query);
  DWC_ASSERT_OK(cold);
  Result<Relation> warm = revived.AnswerQuery(*query);
  DWC_ASSERT_OK(warm);
  Result<Relation> live_answer = warehouse->AnswerQuery(*query);
  DWC_ASSERT_OK(live_answer);
  EXPECT_TRUE(warm->SameContentAs(*cold));
  EXPECT_TRUE(warm->SameContentAs(*live_answer));
}

}  // namespace
}  // namespace dwc
