// Soundness of the static self-maintainability certificates
// (src/analysis/selfmaint.h) against the running system:
//
//  * On random specs and random single-kind delta batches, every SELF
//    certificate is validated dynamically: the specialized maintenance
//    pair, evaluated in an environment binding ONLY the view itself and
//    the reported delta, reproduces exactly the state the full integrator
//    computes. Nothing else was needed — the verdict is honest.
//  * With Warehouse::EnforceCertificates installed, every integration
//    passes the runtime cross-check with zero source reads and zero
//    source queries (Theorem 4.1: update independence).
//  * On the examples corpus, no (view, base, delta kind) is classified
//    SOURCE: the corpus is update independent, and the analyzer knows it.

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "algebra/expr.h"
#include "analysis/analyzer.h"
#include "analysis/selfmaint.h"
#include "core/warehouse_spec.h"
#include "maintenance/delta.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::CatalogShapeName;
using ::dwc::testing::MakeCatalog;
using ::dwc::testing::MustRun;

DeltaKind KindOf(const CanonicalDelta& delta) {
  return delta.deletes.tuples().empty() ? DeltaKind::kInsert
                                        : DeltaKind::kDelete;
}

// Evaluates the certificate's specialized pair against an environment that
// binds ONLY the certified view and the reported delta, returning
// (view \ delta-) ∪ delta+. A SELF verdict promises this is evaluable and
// equal to what the full integrator produces.
Result<Relation> ApplySpecializedPair(const SelfMaintCertificate& cert,
                                      const Relation& old_view,
                                      const CanonicalDelta& delta) {
  Environment env;
  env.Bind(cert.relation, &old_view);
  env.Bind(DeltaInsName(cert.base), &delta.inserts);
  env.Bind(DeltaDelName(cert.base), &delta.deletes);
  Evaluator evaluator(&env);
  ExprRef next = Expr::Union(
      Expr::Difference(Expr::Base(cert.relation), cert.specialized.minus),
      cert.specialized.plus);
  return evaluator.Materialize(*next);
}

class AnalysisSoundnessPropertyTest
    : public ::testing::TestWithParam<CatalogShape> {};

TEST_P(AnalysisSoundnessPropertyTest, SelfCertificatesAreHonest) {
  Rng rng(7411 + static_cast<uint64_t>(GetParam()));
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());
  std::vector<std::string> relations = catalog->RelationNames();

  for (int round = 0; round < 4; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
    auto report =
        std::make_shared<SelfMaintReport>(AnalyzeSelfMaintenance(*spec_ptr));

    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Source source(*db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
    DWC_ASSERT_OK(warehouse);
    warehouse->EnforceCertificates(report);

    for (int step = 0; step < 12; ++step) {
      const std::string& base = relations[rng.Below(relations.size())];
      // Single-kind batches, so each delta exercises exactly one
      // certificate column.
      UpdateStreamOptions options;
      if (step % 2 == 0) {
        options.max_deletes = 0;
      } else {
        options.max_inserts = 0;
      }
      Result<UpdateOp> op =
          GenerateRandomUpdate(source.db(), base, &rng, options);
      DWC_ASSERT_OK(op);
      Result<CanonicalDelta> delta = source.Apply(*op);
      DWC_ASSERT_OK(delta);
      if (delta->empty()) {
        continue;
      }
      DeltaKind kind = KindOf(*delta);

      // Snapshot the pre-state of every SELF-certified view.
      std::vector<std::pair<const SelfMaintCertificate*, Relation>> selfs;
      for (const SelfMaintCertificate& cert : report->certificates) {
        if (cert.base == base && cert.kind == kind &&
            cert.verdict == MaintVerdict::kSelf) {
          const Relation* state = warehouse->FindRelation(cert.relation);
          ASSERT_NE(state, nullptr) << cert.relation;
          selfs.emplace_back(&cert, *state);
        }
      }

      // The runtime cross-check is armed: a lying certificate fails here.
      DWC_ASSERT_OK(warehouse->Integrate(*delta));
      EXPECT_EQ(warehouse->last_integrate_stats().source_reads, 0u);

      for (const auto& [cert, old_view] : selfs) {
        const Relation* actual = warehouse->FindRelation(cert->relation);
        ASSERT_NE(actual, nullptr);
        if (cert->specialized.plus == nullptr) {
          // "Provably never changes": no plan entry, state must be frozen.
          EXPECT_TRUE(actual->SameContentAs(old_view)) << cert->ToString();
          continue;
        }
        Result<Relation> replayed =
            ApplySpecializedPair(*cert, old_view, *delta);
        ASSERT_TRUE(replayed.ok())
            << cert->ToString() << "\nSELF pair not evaluable from the view "
            << "and the delta alone: " << replayed.status().message();
        EXPECT_TRUE(replayed->SameContentAs(*actual))
            << cert->ToString() << "\nreplayed " << replayed->ToString()
            << "\nactual " << actual->ToString();
      }
    }
    // Update independence, dynamically: not one source query.
    EXPECT_EQ(source.query_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AnalysisSoundnessPropertyTest,
    ::testing::Values(CatalogShape::kChain, CatalogShape::kKeyed,
                      CatalogShape::kKeyedInds),
    [](const ::testing::TestParamInfo<CatalogShape>& info) {
      return CatalogShapeName(info.param);
    });

TEST(AnalysisCorpusTest, NoExampleSpecIsClassifiedSource) {
  std::filesystem::path dir(DWC_EXAMPLE_SCRIPTS_DIR);
  size_t specs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dwc") {
      continue;
    }
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ScriptContext context = MustRun(buffer.str());
    if (context.views.empty()) {
      continue;
    }
    AnalysisInput input;
    input.catalog = context.catalog;
    input.views = context.views;
    AnalysisResult result = AnalyzeWarehouse(input);
    if (!result.spec.has_value()) {
      continue;  // Shape findings are the lint suite's business.
    }
    ++specs;
    for (const SelfMaintCertificate& cert :
         result.selfmaint.certificates) {
      EXPECT_NE(cert.verdict, MaintVerdict::kSource)
          << entry.path() << ": " << cert.ToString();
    }

    // Dynamic half: integrate the scripted data under enforced
    // certificates; the corpus must refresh without any source traffic.
    auto spec_ptr = std::make_shared<WarehouseSpec>(*result.spec);
    auto report = std::make_shared<SelfMaintReport>(result.selfmaint);
    Source source(context.db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
    DWC_ASSERT_OK(warehouse);
    warehouse->EnforceCertificates(report);
    Rng rng(0xC0FFEE + specs);
    std::vector<std::string> relations = context.catalog->RelationNames();
    for (int step = 0; step < 6; ++step) {
      const std::string& base = relations[rng.Below(relations.size())];
      Result<UpdateOp> op = GenerateRandomUpdate(source.db(), base, &rng);
      DWC_ASSERT_OK(op);
      Result<CanonicalDelta> delta = source.Apply(*op);
      DWC_ASSERT_OK(delta);
      if (delta->empty()) {
        continue;
      }
      DWC_ASSERT_OK(warehouse->Integrate(*delta));
      EXPECT_EQ(warehouse->last_integrate_stats().source_reads, 0u)
          << entry.path();
    }
    EXPECT_EQ(source.query_count(), 0u) << entry.path();
  }
  EXPECT_GE(specs, 4u) << "example corpus went missing in " << dir;
}

}  // namespace
}  // namespace dwc
