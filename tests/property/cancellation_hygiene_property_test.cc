// Property: a governed query that fails — deadline, tuple budget, or
// external cancel — is hygienic. Across random PSJ warehouses, random
// queries and interleaved deltas, every aborted/timed-out/over-budget
// AnswerQuery leaves (1) zero live snapshot pins, (2) retired-epoch count
// unchanged (no leaked pins blocking reclamation), (3) the warehouse state
// digest untouched, and (4) the subplan cache unpoisoned: the same query
// re-run unbounded afterwards returns exactly the ground-truth answer
// (evaluated directly against the source database — Theorem 3.1's other
// side).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "core/warehouse_spec.h"
#include "runtime/cancel.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/checksum.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "warehouse/source.h"
#include "warehouse/warehouse.h"
#include "workload/random_db.h"
#include "workload/random_views.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

uint64_t Fingerprint(const Warehouse& warehouse) {
  return StateDigest(warehouse.state()).Combined();
}

class CancellationHygienePropertyTest
    : public ::testing::TestWithParam<CatalogShape> {
 protected:
  // Asserts the post-failure invariants: no pins, no retired-epoch growth,
  // state digest unchanged.
  void ExpectHygienic(const Warehouse& warehouse, uint64_t state_before,
                      uint64_t retired_before, const Status& failure) {
    EpochStats stats = warehouse.epoch_stats();
    EXPECT_EQ(stats.live_snapshots, 0u)
        << "a failed query leaked its snapshot pin: "
        << failure.ToString();
    EXPECT_EQ(stats.retired_epochs, retired_before)
        << "a failed query left epochs unreclaimable: "
        << failure.ToString();
    EXPECT_EQ(Fingerprint(warehouse), state_before)
        << "a failed query mutated warehouse state: " << failure.ToString();
  }
};

TEST_P(CancellationHygienePropertyTest, FailedQueriesLeaveNoTrace) {
  std::shared_ptr<Catalog> catalog = MakeCatalog(GetParam());
  std::vector<std::string> relations = catalog->RelationNames();

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(StrCat("round ", round));
    Rng rng(9100 + 53 * static_cast<uint64_t>(GetParam()) +
            static_cast<uint64_t>(round));
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng);
    DWC_ASSERT_OK(views);
    Result<WarehouseSpec> spec = SpecifyWarehouse(catalog, *views);
    DWC_ASSERT_OK(spec);
    auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Source source(*db);
    Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, source.db());
    DWC_ASSERT_OK(warehouse);
    // Cache on: a poisoned entry would surface in the re-run check below.
    EvaluatorOptions options;
    options.cache_budget_tuples = 1 << 16;
    warehouse->SetEvaluatorOptions(options);

    for (int step = 0; step < 12; ++step) {
      SCOPED_TRACE(StrCat("step ", step));
      Result<ExprRef> query = GenerateRandomQuery(*catalog, &rng);
      DWC_ASSERT_OK(query);

      // Ground truth: the query evaluated directly against the source.
      Environment truth_env = Environment::FromDatabase(source.db());
      Result<Relation> truth = EvalExpr(**query, truth_env);
      DWC_ASSERT_OK(truth);
      const uint64_t truth_digest = RelationDigest(*truth);

      const uint64_t state_before = Fingerprint(*warehouse);
      const uint64_t retired_before = warehouse->epoch_stats().retired_epochs;

      // Adversarial tokens. Each must either fail with its governed code —
      // and then hygienically — or, for the budget, legitimately fit.
      {
        auto token =
            CancelToken::WithDeadline(std::chrono::milliseconds(-1));
        Result<Relation> answer =
            warehouse->AnswerQuery(*query, nullptr, token.get());
        ASSERT_FALSE(answer.ok()) << "expired deadline served a query";
        EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
        ExpectHygienic(*warehouse, state_before, retired_before,
                       answer.status());
      }
      {
        auto token = CancelToken::WithBudget(1 + rng.Below(4));
        Result<Relation> answer =
            warehouse->AnswerQuery(*query, nullptr, token.get());
        if (!answer.ok()) {
          EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
              << answer.status().ToString();
          ExpectHygienic(*warehouse, state_before, retired_before,
                         answer.status());
        } else {
          // Small plans can fit a tiny budget; then the answer must be
          // the real one.
          EXPECT_EQ(RelationDigest(*answer), truth_digest);
        }
      }
      {
        auto token = std::make_shared<CancelToken>();
        token->Cancel();
        Result<Relation> answer =
            warehouse->AnswerQuery(*query, nullptr, token.get());
        ASSERT_FALSE(answer.ok()) << "cancelled token served a query";
        EXPECT_EQ(answer.status().code(), StatusCode::kAborted);
        ExpectHygienic(*warehouse, state_before, retired_before,
                       answer.status());
      }

      // The unbounded re-run answers from the same (possibly cached)
      // subplans the failed attempts touched: it must match ground truth.
      Result<Relation> answer = warehouse->AnswerQuery(*query);
      DWC_ASSERT_OK(answer);
      EXPECT_EQ(RelationDigest(*answer), truth_digest)
          << "post-failure answer diverged from ground truth";

      // Advance the state between probes so later rounds exercise fresh
      // epochs and cache versions.
      const std::string& relation = relations[rng.Below(relations.size())];
      Result<UpdateOp> op = GenerateRandomUpdate(source.db(), relation, &rng);
      DWC_ASSERT_OK(op);
      Result<CanonicalDelta> delta = source.Apply(*op);
      DWC_ASSERT_OK(delta);
      if (!delta->empty()) {
        DWC_ASSERT_OK(warehouse->Integrate(*delta));
      }
    }
    DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CancellationHygienePropertyTest,
                         ::testing::Values(CatalogShape::kChain,
                                           CatalogShape::kKeyed,
                                           CatalogShape::kKeyedInds),
                         [](const ::testing::TestParamInfo<CatalogShape>&
                                info) {
                           return ::dwc::testing::CatalogShapeName(
                               info.param);
                         });

}  // namespace
}  // namespace dwc
