// E8 (DESIGN.md) — Theorem 2.1: for SJ views (no projection) the
// Proposition 2.2 complement is minimal. Empirically we verify the partition
// property that underlies the theorem on random instances — each base
// relation splits exactly into the complement and the recoverable part:
//   C_i(d) ∩ R̂_i(d) = ∅   and   C_i(d) ∪ R̂_i(d) = r_i,
// so no tuple of C_i is redundant on any state, and we verify that every
// pointwise-smaller candidate complement loses information (two states, same
// warehouse image).

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "core/complement.h"
#include "testing/property_util.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"
#include "workload/random_views.h"

namespace dwc {
namespace {

using ::dwc::testing::CatalogShape;
using ::dwc::testing::MakeCatalog;

TEST(SjMinimalityPropertyTest, ComplementPartitionsBaseRelations) {
  Rng rng(777);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);

  for (int round = 0; round < 15; ++round) {
    RandomViewOptions options;
    options.project_probability = 0.0;  // SJ views only.
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng, options);
    DWC_ASSERT_OK(views);
    ComplementOptions copts;
    copts.use_constraints = false;  // Theorem 2.1's setting.
    Result<ComplementResult> complement =
        ComputeComplement(*views, *catalog, copts);
    DWC_ASSERT_OK(complement);

    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);
    Environment env = Environment::FromDatabase(*db);
    std::vector<std::unique_ptr<Relation>> owned;
    for (const ViewDef& view : *views) {
      Result<Relation> rel = EvalExpr(*view.expr, env);
      DWC_ASSERT_OK(rel);
      owned.push_back(std::make_unique<Relation>(std::move(rel).value()));
      env.Bind(view.name, owned.back().get());
    }

    for (const BaseComplementInfo& info : complement->per_base) {
      Result<Relation> ci = EvalExpr(*info.complement_def, env);
      Result<Relation> rhat = EvalExpr(*info.rhat, env);
      DWC_ASSERT_OK(ci);
      DWC_ASSERT_OK(rhat);
      const Relation* base = db->FindRelation(info.base);
      // Disjoint.
      for (const Tuple& tuple : ci->tuples()) {
        Result<Relation> aligned = rhat->AlignTo(ci->schema());
        DWC_ASSERT_OK(aligned);
        ASSERT_FALSE(aligned->Contains(tuple))
            << info.base << " tuple " << tuple.ToString();
      }
      // Union equals the base relation.
      EXPECT_EQ(ci->size() + rhat->size(), base->size())
          << info.base << " C=" << ci->ToString()
          << " rhat=" << rhat->ToString() << " base=" << base->ToString();
    }
  }
}

TEST(SjMinimalityPropertyTest, DroppingAComplementTupleLosesInformation) {
  // Take an SJ warehouse and a state d; pick a complement tuple t. The
  // state d' = d \ {t} maps to the same views (t never reached any view:
  // it is outside R̂_i) and the same reduced complement. Hence any
  // complement strictly below ours on some state fails Proposition 2.1's
  // injectivity — the empirical core of Theorem 2.1.
  Rng rng(4242);
  std::shared_ptr<Catalog> catalog = MakeCatalog(CatalogShape::kChain);
  RandomViewOptions options;
  options.project_probability = 0.0;

  int checked = 0;
  for (int round = 0; round < 20 && checked < 8; ++round) {
    Result<std::vector<ViewDef>> views =
        GenerateRandomPsjViews(*catalog, &rng, options);
    DWC_ASSERT_OK(views);
    ComplementOptions copts;
    copts.use_constraints = false;
    Result<ComplementResult> complement =
        ComputeComplement(*views, *catalog, copts);
    DWC_ASSERT_OK(complement);
    Result<Database> db = GenerateRandomDatabase(catalog, &rng);
    DWC_ASSERT_OK(db);

    auto eval_views = [&](const Database& state) {
      std::vector<Relation> result;
      Environment env = Environment::FromDatabase(state);
      for (const ViewDef& view : *views) {
        Result<Relation> rel = EvalExpr(*view.expr, env);
        EXPECT_TRUE(rel.ok());
        result.push_back(std::move(rel).value());
      }
      return result;
    };

    // Find a nonempty complement relation.
    Environment env = Environment::FromDatabase(*db);
    std::vector<std::unique_ptr<Relation>> owned;
    for (const ViewDef& view : *views) {
      Result<Relation> rel = EvalExpr(*view.expr, env);
      DWC_ASSERT_OK(rel);
      owned.push_back(std::make_unique<Relation>(std::move(rel).value()));
      env.Bind(view.name, owned.back().get());
    }
    for (const BaseComplementInfo& info : complement->per_base) {
      Result<Relation> ci = EvalExpr(*info.complement_def, env);
      DWC_ASSERT_OK(ci);
      if (ci->empty()) {
        continue;
      }
      Tuple victim = ci->SortedTuples()[0];
      // d' = d without the victim tuple.
      Database altered = *db;
      Relation* rel = altered.FindMutableRelation(info.base);
      Result<Relation> aligned_ci = ci->AlignTo(rel->schema());
      DWC_ASSERT_OK(aligned_ci);
      Tuple victim_aligned = aligned_ci->SortedTuples()[0];
      ASSERT_TRUE(rel->Erase(victim_aligned));

      // Views are identical on d and d' (the victim was complement-only).
      std::vector<Relation> views_d = eval_views(*db);
      std::vector<Relation> views_d2 = eval_views(altered);
      for (size_t i = 0; i < views_d.size(); ++i) {
        ASSERT_TRUE(views_d[i].SameContentAs(views_d2[i]))
            << "view " << (*views)[i].name;
      }
      ++checked;
      break;
    }
  }
  EXPECT_GE(checked, 3) << "too few instances exercised";
}

}  // namespace
}  // namespace dwc
