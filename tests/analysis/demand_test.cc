// Unit tests for complement demand analysis (Section 6 reduced
// complements, Section 4 closing remark): which complement columns do the
// maintenance plan and the translated queries actually read?

#include "analysis/demand.h"

#include <gtest/gtest.h>

#include "algebra/expr.h"
#include "core/warehouse_spec.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

WarehouseSpec SpecOf(const std::string& script) {
  ScriptContext context = MustRun(script);
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog,
                                                context.views);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  return std::move(spec).value();
}

TEST(DemandTest, SelectionOnlyViewsLeaveComplementDead) {
  // Sigma-views are self-maintainable: nothing ever reads C_Emp.
  WarehouseSpec spec = SpecOf(
      "CREATE TABLE Emp(id INT, dept STRING, salary INT, KEY(id));\n"
      "VIEW HighPaid AS SELECT[salary >= 100000](Emp);\n");
  ComplementUsageReport report = AnalyzeComplementUsage(spec, {});
  ASSERT_EQ(report.dead_relations.size(), 1u);
  EXPECT_EQ(report.dead_relations[0], "C_Emp");
  EXPECT_TRUE(report.demanded.empty());
}

TEST(DemandTest, JoinViewMaintenanceDemandsComplement) {
  // OrderCity's maintenance joins against C_Cust: the complement is live.
  WarehouseSpec spec = SpecOf(
      "CREATE TABLE Cust(cid INT, city STRING, KEY(cid));\n"
      "CREATE TABLE Ord(oid INT, cid INT, KEY(oid));\n"
      "INCLUSION Ord(cid) SUBSETOF Cust(cid);\n"
      "VIEW OrderCity AS PROJECT[oid, cid, city](Ord JOIN Cust);\n");
  ComplementUsageReport report = AnalyzeComplementUsage(spec, {});
  ASSERT_TRUE(report.demanded.count("C_Cust") > 0)
      << report.ToString();
  EXPECT_EQ(report.demanded.at("C_Cust"), AttrSet({"cid", "city"}));
  EXPECT_TRUE(report.dead_relations.empty());
}

TEST(DemandTest, NarrowQuerySeesThroughUnionShapedInverse) {
  // A query projecting one column of Emp demands exactly that column of
  // C_Emp (union narrowing is exact); the other columns are dead weight.
  WarehouseSpec spec = SpecOf(
      "CREATE TABLE Emp(id INT, dept STRING, salary INT, KEY(id));\n"
      "VIEW HighPaid AS SELECT[salary >= 100000](Emp);\n");
  std::vector<ExprRef> queries = {
      Expr::Project({"id"}, Expr::Base("Emp"))};
  ComplementUsageReport report = AnalyzeComplementUsage(spec, queries);
  ASSERT_TRUE(report.demanded.count("C_Emp") > 0) << report.ToString();
  EXPECT_EQ(report.demanded.at("C_Emp"), AttrSet{"id"});
  ASSERT_TRUE(report.dead_columns.count("C_Emp") > 0);
  EXPECT_EQ(report.dead_columns.at("C_Emp"), AttrSet({"dept", "salary"}));
}

TEST(DemandTest, FullWidthQueryDemandsEverything) {
  WarehouseSpec spec = SpecOf(
      "CREATE TABLE Emp(id INT, dept STRING, salary INT, KEY(id));\n"
      "VIEW HighPaid AS SELECT[salary >= 100000](Emp);\n");
  std::vector<ExprRef> queries = {Expr::Base("Emp")};
  ComplementUsageReport report = AnalyzeComplementUsage(spec, queries);
  ASSERT_TRUE(report.demanded.count("C_Emp") > 0) << report.ToString();
  EXPECT_EQ(report.demanded.at("C_Emp"),
            AttrSet({"id", "dept", "salary"}));
  EXPECT_TRUE(report.dead_columns.empty());
}

TEST(DemandTest, SelectionPredicateAttributesAreDemanded) {
  // project[id](select[dept = 'x'](Emp)): the predicate column is read
  // even though the projection drops it.
  WarehouseSpec spec = SpecOf(
      "CREATE TABLE Emp(id INT, dept STRING, salary INT, KEY(id));\n"
      "VIEW HighPaid AS SELECT[salary >= 100000](Emp);\n");
  std::vector<ExprRef> queries = {Expr::Project(
      {"id"}, Expr::Select(Predicate::AttrEq("dept", Value::String("x")),
                           Expr::Base("Emp")))};
  ComplementUsageReport report = AnalyzeComplementUsage(spec, queries);
  ASSERT_TRUE(report.demanded.count("C_Emp") > 0) << report.ToString();
  EXPECT_EQ(report.demanded.at("C_Emp"), AttrSet({"id", "dept"}));
}

TEST(DemandTest, NoComplementsMeansEmptyReport) {
  // V exposes all of R: the complement is provably empty, nothing to rate.
  WarehouseSpec spec = SpecOf(
      "CREATE TABLE R(a INT, b INT, KEY(a));\n"
      "VIEW V AS R;\n");
  ComplementUsageReport report = AnalyzeComplementUsage(spec, {});
  EXPECT_TRUE(report.demanded.empty());
  EXPECT_TRUE(report.dead_relations.empty());
  EXPECT_TRUE(report.dead_columns.empty());
}

}  // namespace
}  // namespace dwc
