// Unit tests for the self-maintainability certificate engine: one verdict
// per (warehouse relation, base relation, delta kind), derived by
// specializing the maintenance plan to single-kind delta batches
// (Theorem 4.1 machinery, Section 4's sigma-view remark).

#include "analysis/selfmaint.h"

#include <gtest/gtest.h>

#include "core/warehouse_spec.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

SelfMaintReport AnalyzeScript(const std::string& script) {
  ScriptContext context = MustRun(script);
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog,
                                                context.views);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  return AnalyzeSelfMaintenance(*spec);
}

TEST(SelfMaintTest, CertificateGridIsComplete) {
  ScriptContext context = MustRun(testing::Figure1Script(true));
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog,
                                                context.views);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  SelfMaintReport report = AnalyzeSelfMaintenance(*spec);
  // Every (warehouse relation, base, kind) triple gets a certificate.
  size_t warehouse_relations = spec->AllWarehouseViews().size();
  size_t bases = spec->catalog().RelationNames().size();
  EXPECT_EQ(report.certificates.size(), warehouse_relations * bases * 2);
  for (const ViewDef& view : spec->AllWarehouseViews()) {
    for (const std::string& base : spec->catalog().RelationNames()) {
      for (DeltaKind kind : {DeltaKind::kInsert, DeltaKind::kDelete}) {
        const SelfMaintCertificate* cert =
            report.Find(view.name, base, kind);
        ASSERT_NE(cert, nullptr)
            << view.name << " / " << base << " / " << DeltaKindName(kind);
        EXPECT_FALSE(cert->derivation.empty());
      }
    }
  }
}

TEST(SelfMaintTest, SelectionViewIsSelfMaintainable) {
  // Section 4's closing remark: sigma-views are self-maintainable for
  // both insertions and deletions, no complement needed.
  SelfMaintReport report = AnalyzeScript(
      "CREATE TABLE Emp(id INT, dept STRING, salary INT, KEY(id));\n"
      "VIEW HighPaid AS SELECT[salary >= 100000](Emp);\n");
  for (DeltaKind kind : {DeltaKind::kInsert, DeltaKind::kDelete}) {
    const SelfMaintCertificate* cert =
        report.Find("HighPaid", "Emp", kind);
    ASSERT_NE(cert, nullptr);
    EXPECT_EQ(cert->verdict, MaintVerdict::kSelf)
        << cert->ToString();
    // A SELF certificate may read at most the relation itself (the delta
    // bindings ins:/del: are excluded from `reads`).
    for (const std::string& read : cert->reads) {
      EXPECT_EQ(read, "HighPaid") << cert->ToString();
    }
  }
}

TEST(SelfMaintTest, UnrelatedBaseNeverChangesView) {
  SelfMaintReport report = AnalyzeScript(
      "CREATE TABLE R(a INT, KEY(a));\n"
      "CREATE TABLE S(b INT, KEY(b));\n"
      "VIEW V AS SELECT[a > 0](R);\n"
      "VIEW W AS SELECT[b > 0](S);\n");
  const SelfMaintCertificate* cert =
      report.Find("V", "S", DeltaKind::kInsert);
  ASSERT_NE(cert, nullptr);
  // V does not read S: the plan has no entry, which is the strongest SELF.
  EXPECT_EQ(cert->verdict, MaintVerdict::kSelf) << cert->ToString();
  EXPECT_TRUE(cert->reads.empty());
}

TEST(SelfMaintTest, JoinViewMaintainableFromWarehouseAlone) {
  // Theorem 4.1: every PSJ warehouse is update independent — no verdict
  // may be SOURCE, though join views generally need W = V ∪ C.
  ScriptContext context = MustRun(testing::Figure1Script(true));
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog,
                                                context.views);
  ASSERT_TRUE(spec.ok());
  SelfMaintReport report = AnalyzeSelfMaintenance(*spec);
  for (const SelfMaintCertificate& cert : report.certificates) {
    EXPECT_NE(cert.verdict, MaintVerdict::kSource) << cert.ToString();
  }
  // Deleting from Sale can shrink Sold; the maintenance is warehouse-local.
  const SelfMaintCertificate* cert =
      report.Find("Sold", "Sale", DeltaKind::kDelete);
  ASSERT_NE(cert, nullptr);
  EXPECT_LE(static_cast<int>(cert->verdict),
            static_cast<int>(MaintVerdict::kComplement));
}

TEST(SelfMaintTest, OverallIsWorstVerdictAcrossRelations) {
  ScriptContext context = MustRun(testing::Figure1Script(true));
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog,
                                                context.views);
  ASSERT_TRUE(spec.ok());
  SelfMaintReport report = AnalyzeSelfMaintenance(*spec);
  MaintVerdict overall = report.Overall("Sale", DeltaKind::kDelete);
  for (const SelfMaintCertificate& cert : report.certificates) {
    if (cert.base == "Sale" && cert.kind == DeltaKind::kDelete) {
      EXPECT_LE(static_cast<int>(cert.verdict), static_cast<int>(overall));
    }
  }
}

TEST(SelfMaintTest, CertificateToStringNamesTheVerdict) {
  SelfMaintReport report = AnalyzeScript(
      "CREATE TABLE Emp(id INT, salary INT, KEY(id));\n"
      "VIEW HighPaid AS SELECT[salary >= 100](Emp);\n");
  const SelfMaintCertificate* cert =
      report.Find("HighPaid", "Emp", DeltaKind::kInsert);
  ASSERT_NE(cert, nullptr);
  std::string text = cert->ToString();
  EXPECT_NE(text.find("SELF"), std::string::npos) << text;
  EXPECT_NE(text.find("HighPaid"), std::string::npos) << text;
  EXPECT_NE(text.find("insert"), std::string::npos) << text;
}

}  // namespace
}  // namespace dwc
