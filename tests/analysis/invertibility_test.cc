// Unit tests for the invertibility checker: is W⁻¹ well-defined
// (Proposition 2.1), and does any claimed residual store actually make it
// so? Lossy claimed complements must be rejected with a minimal
// missing-attribute witness.

#include "analysis/invertibility.h"

#include <gtest/gtest.h>

#include "algebra/expr.h"
#include "core/complement.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

TEST(InvertibilityTest, IdentityViewProvenWithoutComplement) {
  // V exposes all of R: the constructed complement is provably empty, so
  // invertibility holds with no residual store at all.
  ScriptContext context = MustRun(
      "CREATE TABLE R(a INT, b INT, KEY(a));\n"
      "VIEW V AS R;\n");
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, context.views, {});
  ASSERT_EQ(report.per_base.size(), 1u);
  EXPECT_EQ(report.per_base[0].verdict, InvertVerdict::kProven)
      << report.ToString();
  EXPECT_TRUE(report.per_base[0].findings.empty());
  EXPECT_TRUE(report.AllProven());
}

TEST(InvertibilityTest, SelectionViewAloneHasNoResidual) {
  ScriptContext context = MustRun(
      "CREATE TABLE R(a INT, b INT, KEY(a));\n"
      "VIEW V AS SELECT[a > 0](R);\n");
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, context.views, {});
  const BaseInvertibility* base = report.FindBase("R");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->verdict, InvertVerdict::kNotProven);
  ASSERT_EQ(base->findings.size(), 1u);
  EXPECT_EQ(base->findings[0].kind, InvertFindingKind::kNoResidual);
  EXPECT_FALSE(report.AllProven());
}

TEST(InvertibilityTest, ClaimedConstructionComplementIsProven) {
  // Claim exactly the complement Equation (3) constructs: the checker
  // recognizes it by canonical identity.
  ScriptContext context = MustRun(
      "CREATE TABLE R(a INT, b INT, KEY(a));\n"
      "VIEW V AS SELECT[a > 0](R);\n");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);
  const BaseComplementInfo* info = complement->FindBase("R");
  ASSERT_NE(info, nullptr);
  ASSERT_FALSE(info->provably_empty);
  std::vector<ViewDef> claimed = {{"C_R", info->complement_def}};
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, context.views, claimed);
  const BaseInvertibility* base = report.FindBase("R");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->verdict, InvertVerdict::kProvenByConstruction)
      << report.ToString();
  EXPECT_TRUE(base->findings.empty());
  EXPECT_TRUE(report.AllProven());
}

TEST(InvertibilityTest, LossyClaimedComplementGetsMinimalWitness) {
  // C_Sale projects `price` away: reconstruction of Sale is impossible and
  // the witness is exactly the set of unrecoverable attributes.
  ScriptContext context = MustRun(
      "CREATE TABLE Sale(item INT, clerk STRING, price INT, KEY(item));\n"
      "VIEW CheapSales AS SELECT[price < 100](Sale);\n"
      "VIEW C_Sale AS PROJECT[item, clerk](SELECT[price >= 100](Sale));\n");
  std::vector<ViewDef> views = {context.views[0]};
  std::vector<ViewDef> claimed = {context.views[1]};
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, views, claimed);
  const BaseInvertibility* base = report.FindBase("Sale");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->verdict, InvertVerdict::kNotProven);
  ASSERT_EQ(base->findings.size(), 1u);
  const InvertFinding& finding = base->findings[0];
  EXPECT_EQ(finding.kind, InvertFindingKind::kMissingAttributes);
  EXPECT_EQ(finding.missing, AttrSet{"price"})
      << "witness must be minimal: only the dropped attribute";
}

TEST(InvertibilityTest, FullWidthButDifferentSubtractionIsUnverified) {
  ScriptContext context = MustRun(
      "CREATE TABLE Sale(item INT, clerk STRING, price INT, KEY(item));\n"
      "VIEW CheapSales AS SELECT[price < 100](Sale);\n"
      "VIEW C_Sale AS SELECT[price >= 50](Sale);\n");
  std::vector<ViewDef> views = {context.views[0]};
  std::vector<ViewDef> claimed = {context.views[1]};
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, views, claimed);
  const BaseInvertibility* base = report.FindBase("Sale");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->verdict, InvertVerdict::kNotProven);
  ASSERT_EQ(base->findings.size(), 1u);
  EXPECT_EQ(base->findings[0].kind,
            InvertFindingKind::kUnverifiedSubtraction);
}

TEST(InvertibilityTest, EveryCatalogRelationGetsAVerdict) {
  ScriptContext context = MustRun(testing::Figure1Script(true));
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, context.views, {});
  EXPECT_EQ(report.per_base.size(),
            context.catalog->RelationNames().size());
  for (const BaseInvertibility& base : report.per_base) {
    EXPECT_FALSE(base.derivation.empty()) << base.base;
  }
}

TEST(InvertibilityTest, ReportToStringShowsWitness) {
  ScriptContext context = MustRun(
      "CREATE TABLE Sale(item INT, clerk STRING, price INT, KEY(item));\n"
      "VIEW CheapSales AS SELECT[price < 100](Sale);\n"
      "VIEW C_Sale AS PROJECT[item, clerk](SELECT[price >= 100](Sale));\n");
  std::vector<ViewDef> views = {context.views[0]};
  std::vector<ViewDef> claimed = {context.views[1]};
  InvertibilityReport report =
      CheckInvertibility(*context.catalog, views, claimed);
  std::string text = report.ToString();
  EXPECT_NE(text.find("price"), std::string::npos) << text;
  EXPECT_NE(text.find("NOT-PROVEN"), std::string::npos) << text;
}

}  // namespace
}  // namespace dwc
