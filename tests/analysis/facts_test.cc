// Unit tests for the attribute-level fact lattice (DESIGN.md §11): every
// fact the DataflowAnalyzer derives must hold on all database states
// satisfying the catalog's keys and inclusion dependencies.

#include "analysis/facts.h"

#include <gtest/gtest.h>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

// Figure 1 with constraints: Emp(clerk, age) KEY(clerk),
// Sale(item, clerk), Sale(clerk) ⊆ Emp(clerk).
ScriptContext Fig1() {
  return MustRun(
      "CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));\n"
      "CREATE TABLE Sale(item STRING, clerk STRING, KEY(item, clerk));\n"
      "INCLUSION Sale(clerk) SUBSETOF Emp(clerk);\n");
}

TEST(FactsTest, BaseRelationFacts) {
  ScriptContext context = Fig1();
  NodeFacts facts = AnalyzeFacts(Expr::Base("Emp"), *context.catalog);
  EXPECT_EQ(facts.attrs, AttrSet({"clerk", "age"}));
  EXPECT_EQ(facts.provenance.at("Emp"), AttrSet({"clerk", "age"}));
  // Declared key plus the trivial full-attribute key.
  EXPECT_TRUE(facts.keys.count(AttrSet{"clerk"}));
  EXPECT_TRUE(facts.keys.count(AttrSet({"clerk", "age"})));
  // A base retains every tuple of itself, reads only itself.
  EXPECT_TRUE(facts.total_bases.count("Emp"));
  EXPECT_EQ(facts.sources, std::set<std::string>{"Emp"});
  EXPECT_TRUE(facts.dropped.empty());
}

TEST(FactsTest, UnknownNameHasNoFacts) {
  ScriptContext context = Fig1();
  NodeFacts facts = AnalyzeFacts(Expr::Base("ins:Emp"), *context.catalog);
  EXPECT_TRUE(facts.attrs.empty());
  EXPECT_TRUE(facts.keys.empty());
  EXPECT_TRUE(facts.total_bases.empty());
}

TEST(FactsTest, SelectionKeepsKeysLosesTotality) {
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Select(Predicate::AttrEq("age", Value::Int(23)),
                              Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_EQ(facts.attrs, AttrSet({"clerk", "age"}));
  EXPECT_TRUE(facts.keys.count(AttrSet{"clerk"}));
  // A selection can drop tuples: Emp is no longer provably total.
  EXPECT_TRUE(facts.total_bases.empty());
  EXPECT_EQ(facts.sources, std::set<std::string>{"Emp"});
}

TEST(FactsTest, ProjectionRecordsDroppedAttributes) {
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Project({"clerk"}, Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_EQ(facts.attrs, AttrSet{"clerk"});
  EXPECT_EQ(facts.provenance.at("Emp"), AttrSet{"clerk"});
  // The declared key survives (it is inside the projection) and the image
  // of Emp is still complete: projection loses width, not tuples.
  EXPECT_TRUE(facts.keys.count(AttrSet{"clerk"}));
  EXPECT_TRUE(facts.total_bases.count("Emp"));
  EXPECT_EQ(facts.dropped.at("Emp"), AttrSet{"age"});
}

TEST(FactsTest, ProjectionDroppingKeyLosesIt) {
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Project({"age"}, Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  // Only the trivial key of the output remains.
  EXPECT_EQ(facts.keys, std::set<AttrSet>{AttrSet{"age"}});
  EXPECT_EQ(facts.dropped.at("Emp"), AttrSet{"clerk"});
}

TEST(FactsTest, JoinKeyClosureRule) {
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_EQ(facts.attrs, AttrSet({"item", "clerk", "age"}));
  // clerk is a key of Emp and the join attribute, so Sale's key alone
  // functionally determines the whole output tuple (FD closure).
  EXPECT_TRUE(facts.keys.count(AttrSet({"item", "clerk"})))
      << "key of Sale should survive the join";
  EXPECT_EQ(facts.sources, std::set<std::string>({"Sale", "Emp"}));
  // Both bases stay visible.
  EXPECT_EQ(facts.provenance.at("Sale"), AttrSet({"item", "clerk"}));
  EXPECT_EQ(facts.provenance.at("Emp"), AttrSet({"clerk", "age"}));
}

TEST(FactsTest, ReferentialIntegrityMakesJoinTotalOnReferencingSide) {
  // Example 2.3/2.4: Sale(clerk) ⊆ Emp(clerk) means no Sale tuple dangles,
  // so Sale JOIN Emp retains an image of every Sale tuple — but not of
  // every Emp tuple (clerks with no sales vanish).
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_TRUE(facts.total_bases.count("Sale"));
  EXPECT_FALSE(facts.total_bases.count("Emp"));
}

TEST(FactsTest, JoinWithoutIndIsNotTotal) {
  ScriptContext context = MustRun(
      "CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));\n"
      "CREATE TABLE Sale(item STRING, clerk STRING, KEY(item, clerk));\n");
  ExprRef expr = Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_TRUE(facts.total_bases.empty());
}

TEST(FactsTest, RenameRemapsEverything) {
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Rename({{"clerk", "seller"}}, Expr::Base("Emp"));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_EQ(facts.attrs, AttrSet({"seller", "age"}));
  EXPECT_EQ(facts.provenance.at("Emp"), AttrSet({"seller", "age"}));
  EXPECT_TRUE(facts.keys.count(AttrSet{"seller"}));
  EXPECT_TRUE(facts.total_bases.count("Emp"));
}

TEST(FactsTest, UnionKeepsOnlyTrivialKey) {
  ScriptContext context = Fig1();
  ExprRef emp = Expr::Base("Emp");
  ExprRef expr = Expr::Union(
      Expr::Select(Predicate::AttrEq("age", Value::Int(23)), emp), emp);
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  // Keys don't survive a union in general; the trivial key remains.
  EXPECT_EQ(facts.keys, std::set<AttrSet>{AttrSet({"clerk", "age"})});
  // Totality is a union of the branches: the right branch is all of Emp.
  EXPECT_TRUE(facts.total_bases.count("Emp"));
}

TEST(FactsTest, DifferenceKeepsLeftFactsDropsTotality) {
  ScriptContext context = Fig1();
  ExprRef expr = Expr::Difference(
      Expr::Base("Emp"),
      Expr::Select(Predicate::AttrEq("age", Value::Int(23)),
                   Expr::Base("Emp")));
  NodeFacts facts = AnalyzeFacts(expr, *context.catalog);
  EXPECT_EQ(facts.attrs, AttrSet({"clerk", "age"}));
  EXPECT_TRUE(facts.keys.count(AttrSet{"clerk"}));
  EXPECT_TRUE(facts.total_bases.empty());
}

TEST(FactsTest, MemoizationReturnsSameFactsForSharedNode) {
  ScriptContext context = Fig1();
  DataflowAnalyzer analyzer(context.catalog.get());
  ExprRef base = Expr::Base("Emp");
  const NodeFacts& first = analyzer.Analyze(base);
  const NodeFacts& second = analyzer.Analyze(base);
  EXPECT_EQ(&first, &second) << "facts must be memoized per node";
}

}  // namespace
}  // namespace dwc
