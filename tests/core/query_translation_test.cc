// E2 / Theorem 3.1 (DESIGN.md): query translation through W^-1.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "core/query_translation.h"
#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::MustRun;

class QueryTranslationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(Figure1Script(/*with_constraints=*/true));
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(context_.catalog, context_.views);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
    Result<Warehouse> warehouse = Warehouse::Load(spec_, context_.db);
    DWC_ASSERT_OK(warehouse);
    warehouse_ = std::make_unique<Warehouse>(std::move(warehouse).value());
  }

  // Asserts Q(d) == Q̄(W(d)) for the current state.
  void ExpectCommutes(const std::string& query_text) {
    Result<ExprRef> query = ParseExpr(query_text);
    DWC_ASSERT_OK(query);
    Result<Relation> direct = context_.Evaluate(*query);
    DWC_ASSERT_OK(direct);
    Result<Relation> via_warehouse = warehouse_->AnswerQuery(*query);
    DWC_ASSERT_OK(via_warehouse);
    EXPECT_TRUE(testing::RelationsEqual(*via_warehouse, *direct))
        << "query: " << query_text;
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(QueryTranslationTest, TranslatedQueriesCommute) {
  ExpectCommutes("Sale");
  ExpectCommutes("Emp");
  ExpectCommutes("Sale JOIN Emp");
  ExpectCommutes("project[clerk](Sale) union project[clerk](Emp)");
  ExpectCommutes("project[clerk](Emp) minus project[clerk](Sale)");
  ExpectCommutes("select[age >= 25](Emp)");
  ExpectCommutes("project[age](select[item = 'PC'](Sale) JOIN Emp)");
  ExpectCommutes("rename[clerk -> seller](Sale)");
  ExpectCommutes("select[item != 'VCR'](Sale) JOIN select[age < 30](Emp)");
}

TEST_F(QueryTranslationTest, TranslationMentionsOnlyWarehouseNames) {
  Result<ExprRef> query =
      ParseExpr("project[clerk](Sale) union project[clerk](Emp)");
  DWC_ASSERT_OK(query);
  Result<ExprRef> translated = TranslateQuery(*query, *spec_);
  DWC_ASSERT_OK(translated);
  for (const std::string& name : (*translated)->ReferencedNames()) {
    EXPECT_NE(name, "Sale");
    EXPECT_NE(name, "Emp");
    EXPECT_NE(spec_->FindWarehouseSchema(name), nullptr)
        << "unresolved name " << name;
  }
}

TEST_F(QueryTranslationTest, Example12TranslationShape) {
  // With referential integrity, Sale = pi_{item,clerk}(Sold) and
  // Emp = C_Emp U pi_{clerk,age}(Sold): the union query needs only Sold
  // and C_Emp.
  Result<ExprRef> query =
      ParseExpr("project[clerk](Sale) union project[clerk](Emp)");
  DWC_ASSERT_OK(query);
  Result<ExprRef> translated = TranslateQuery(*query, *spec_);
  DWC_ASSERT_OK(translated);
  std::set<std::string> names = (*translated)->ReferencedNames();
  EXPECT_EQ(names, (std::set<std::string>{"Sold", "C_Emp"}));
}

TEST_F(QueryTranslationTest, WarehouseNamesPassThrough) {
  // A query already phrased over warehouse relations is untouched.
  Result<ExprRef> query = ParseExpr("project[clerk](Sold)");
  DWC_ASSERT_OK(query);
  Result<ExprRef> translated = TranslateQuery(*query, *spec_);
  DWC_ASSERT_OK(translated);
  EXPECT_TRUE((*translated)->Equals(**query));
}

TEST_F(QueryTranslationTest, UnknownRelationRejected) {
  Result<ExprRef> query = ParseExpr("project[clerk](Nonexistent)");
  DWC_ASSERT_OK(query);
  Result<ExprRef> translated = TranslateQuery(*query, *spec_);
  EXPECT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryTranslationTest, CommutesAfterUpdates) {
  // Evolve the source, refresh the warehouse, and re-check the diagram.
  Source source(context_.db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);

  UpdateOp op1{"Emp", {testing::T({testing::S("Zoe"), testing::I(41)})}, {}};
  Result<CanonicalDelta> d1 = source.Apply(op1);
  DWC_ASSERT_OK(d1);
  DWC_ASSERT_OK(warehouse->Integrate(*d1));

  UpdateOp op2{"Sale",
               {testing::T({testing::S("Printer"), testing::S("Zoe")})},
               {testing::T({testing::S("TV set"), testing::S("Mary")})}};
  Result<CanonicalDelta> d2 = source.Apply(op2);
  DWC_ASSERT_OK(d2);
  DWC_ASSERT_OK(warehouse->Integrate(*d2));

  Result<ExprRef> query = ParseExpr(
      "project[clerk](Sale) union project[clerk](select[age >= 30](Emp))");
  DWC_ASSERT_OK(query);
  Result<Relation> via_warehouse = warehouse->AnswerQuery(*query);
  DWC_ASSERT_OK(via_warehouse);
  Environment source_env = Environment::FromDatabase(source.db());
  Result<Relation> direct = EvalExpr(**query, source_env);
  DWC_ASSERT_OK(direct);
  EXPECT_TRUE(testing::RelationsEqual(*via_warehouse, *direct));
}

}  // namespace
}  // namespace dwc
