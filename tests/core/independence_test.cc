// Section 6: degree of query independence with partial warehouses.

#include "core/independence.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "core/warehouse_spec.h"
#include "warehouse/warehouse.h"
#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::MustRun;

class IndependenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Example 1.1 setting (no referential integrity): warehouse {Sold},
    // complement {C_Emp, C_Sale}.
    context_ = MustRun(Figure1Script(/*with_constraints=*/false));
    ComplementOptions options;
    options.use_constraints = false;
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(context_.catalog, context_.views, options);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_unique<WarehouseSpec>(std::move(spec).value());
  }

  bool Answerable(const std::string& query_text,
                  const IndependenceReport& report) {
    Result<ExprRef> query = ParseExpr(query_text);
    EXPECT_TRUE(query.ok());
    return QueryAnswerable(**query, *spec_, report);
  }

  ScriptContext context_;
  std::unique_ptr<WarehouseSpec> spec_;
};

TEST_F(IndependenceTest, FullWarehouseIsQueryIndependent) {
  IndependenceReport report = AnalyzeFullIndependence(*spec_);
  EXPECT_TRUE(report.fully_query_independent);
  EXPECT_TRUE(report.base_reconstructible.at("Emp"));
  EXPECT_TRUE(report.base_reconstructible.at("Sale"));
  EXPECT_TRUE(Answerable("project[clerk](Sale) union project[clerk](Emp)",
                         report));
  EXPECT_TRUE(Answerable("Sold", report));
}

TEST_F(IndependenceTest, DroppingAComplementLosesItsBase) {
  // Leave C_Emp virtual (the Section 6 remark): Emp is no longer
  // reconstructible; Sale still is.
  IndependenceReport report =
      AnalyzeIndependence(*spec_, {"Sold", "C_Sale"});
  EXPECT_FALSE(report.fully_query_independent);
  EXPECT_FALSE(report.base_reconstructible.at("Emp"));
  EXPECT_TRUE(report.base_reconstructible.at("Sale"));
  EXPECT_TRUE(Answerable("project[clerk](Sale)", report));
  EXPECT_FALSE(Answerable("project[clerk](Emp)", report));
  EXPECT_FALSE(Answerable("Sale JOIN Emp", report));
  // Queries over still-available warehouse views are fine.
  EXPECT_TRUE(Answerable("project[clerk](Sold)", report));
  // Queries over the dropped complement are not.
  EXPECT_FALSE(Answerable("C_Emp", report));
}

TEST_F(IndependenceTest, ViewAloneAnswersNothingOverBases) {
  IndependenceReport report = AnalyzeIndependence(*spec_, {"Sold"});
  EXPECT_FALSE(report.fully_query_independent);
  EXPECT_FALSE(report.base_reconstructible.at("Emp"));
  // Sale's inverse is pi(Sold) union C_Sale: requires C_Sale.
  EXPECT_FALSE(report.base_reconstructible.at("Sale"));
  EXPECT_TRUE(Answerable("Sold", report));
  EXPECT_FALSE(Answerable("Sale", report));
}

TEST_F(IndependenceTest, ConstraintsReduceWhatMustBeAvailable) {
  // With referential integrity, Sale = pi(Sold): reconstructible from the
  // view alone even without any complement.
  ScriptContext context = MustRun(Figure1Script(/*with_constraints=*/true));
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views);
  DWC_ASSERT_OK(spec);
  IndependenceReport report = AnalyzeIndependence(*spec, {"Sold"});
  EXPECT_TRUE(report.base_reconstructible.at("Sale"));
  EXPECT_FALSE(report.base_reconstructible.at("Emp"));
  EXPECT_NE(report.ToString().find("Emp: NOT reconstructible"),
            std::string::npos);
}

TEST_F(IndependenceTest, UnknownNamesIgnoredOrRejected) {
  IndependenceReport report =
      AnalyzeIndependence(*spec_, {"Sold", "NoSuchView"});
  EXPECT_EQ(report.available.count("NoSuchView"), 0u);
  EXPECT_FALSE(Answerable("NoSuchRelation", report));
}


TEST(PartialAnsweringTest, SelectionViewsAnswerRestrictions) {
  // Warehouse: a selection view over Emp (seniors) and the join view. Leave
  // every complement virtual: Emp is NOT reconstructible, yet queries whose
  // restriction implies the view predicate are still answerable locally.
  ScriptContext context = MustRun(R"(
CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));
INSERT INTO Emp VALUES ('Mary', 23), ('John', 45), ('Zoe', 51);
VIEW Seniors AS SELECT[age >= 40](Emp);
)");
  ComplementOptions options;
  options.use_constraints = false;
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views, options);
  DWC_ASSERT_OK(spec);
  IndependenceReport report = AnalyzeIndependence(*spec, {"Seniors"});
  EXPECT_FALSE(report.base_reconstructible.at("Emp"));

  // sigma_{age >= 50}(Emp): 50 >= 40, so Seniors answers it.
  Result<ExprRef> query = ParseExpr("select[age >= 50](Emp)");
  DWC_ASSERT_OK(query);
  Result<ExprRef> rewritten = RewriteOverAvailable(*query, *spec, report);
  DWC_ASSERT_OK(rewritten);
  EXPECT_EQ((*rewritten)->ReferencedNames(),
            (std::set<std::string>{"Seniors"}));

  // Evaluate against the materialized view and compare with ground truth.
  Result<Relation> seniors = context.Evaluate(context.views[0].expr);
  DWC_ASSERT_OK(seniors);
  Environment env;
  env.Bind("Seniors", &seniors.value());
  Result<Relation> answer = EvalExpr(**rewritten, env);
  DWC_ASSERT_OK(answer);
  Result<Relation> expected = context.Evaluate(*query);
  DWC_ASSERT_OK(expected);
  EXPECT_TRUE(testing::RelationsEqual(*answer, *expected));
  EXPECT_EQ(answer->size(), 1u);  // Zoe.

  // A restriction NOT implying the view predicate cannot be answered.
  Result<ExprRef> younger = ParseExpr("select[age >= 30](Emp)");
  DWC_ASSERT_OK(younger);
  Result<ExprRef> failed = RewriteOverAvailable(*younger, *spec, report);
  EXPECT_EQ(failed.status().code(), StatusCode::kFailedPrecondition);

  // Neither can the unrestricted base.
  Result<ExprRef> bare = ParseExpr("Emp");
  DWC_ASSERT_OK(bare);
  EXPECT_FALSE(RewriteOverAvailable(*bare, *spec, report).ok());
}

TEST(PartialAnsweringTest, CombinesInversesAndSelectionViews) {
  // Sale is reconstructible via its complement; Emp restrictions go
  // through the Seniors view.
  ScriptContext context = MustRun(R"(
CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));
CREATE TABLE Sale(item STRING, clerk STRING);
INSERT INTO Emp VALUES ('Mary', 23), ('John', 45), ('Zoe', 51);
INSERT INTO Sale VALUES ('TV', 'Mary'), ('PC', 'Zoe');
VIEW Seniors AS SELECT[age >= 40](Emp);
VIEW Sold AS Sale JOIN Emp;
)");
  ComplementOptions options;
  options.use_constraints = false;
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views, options);
  DWC_ASSERT_OK(spec);
  IndependenceReport report =
      AnalyzeIndependence(*spec, {"Seniors", "Sold", "C_Sale"});
  EXPECT_TRUE(report.base_reconstructible.at("Sale"));
  EXPECT_FALSE(report.base_reconstructible.at("Emp"));

  Result<ExprRef> query =
      ParseExpr("Sale join select[age > 40](Emp)");
  DWC_ASSERT_OK(query);
  Result<ExprRef> rewritten = RewriteOverAvailable(*query, *spec, report);
  DWC_ASSERT_OK(rewritten);
  for (const std::string& name : (*rewritten)->ReferencedNames()) {
    EXPECT_TRUE(name == "Seniors" || name == "Sold" || name == "C_Sale")
        << name;
  }

  // Ground truth comparison over the materialized warehouse.
  auto spec_ptr = std::make_shared<WarehouseSpec>(std::move(spec).value());
  Result<Warehouse> warehouse = Warehouse::Load(spec_ptr, context.db);
  DWC_ASSERT_OK(warehouse);
  Environment env = warehouse->Env();
  Result<Relation> answer = EvalExpr(**rewritten, env);
  DWC_ASSERT_OK(answer);
  Result<Relation> expected = context.Evaluate(*query);
  DWC_ASSERT_OK(expected);
  EXPECT_TRUE(testing::RelationsEqual(*answer, *expected));
  EXPECT_EQ(answer->size(), 1u);  // Zoe's PC sale.
}

}  // namespace
}  // namespace dwc
