// E3 (DESIGN.md) — Example 2.1: complements of R |x| S |x| T, and the
// effect of adding V2 = S to the warehouse.

#include <gtest/gtest.h>

#include "algebra/environment.h"
#include "core/complement.h"
#include "core/ordering.h"
#include "parser/interpreter.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

constexpr char kSchema[] = R"(
CREATE TABLE R(X INT, Y INT);
CREATE TABLE S(Y INT, Z INT);
CREATE TABLE T(Z INT);
INSERT INTO R VALUES (1, 10), (2, 20), (3, 30);
INSERT INTO S VALUES (10, 100), (20, 200), (40, 400);
INSERT INTO T VALUES (100), (300);
)";

TEST(Example21Test, SingleJoinViewComplement) {
  ScriptContext context = MustRun(std::string(kSchema) +
                                  "VIEW V1 AS R JOIN S JOIN T;");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  // One complement per base relation: C_R = R \ pi_XY(V1), etc.
  ASSERT_EQ(complement->complements.size(), 3u);
  const BaseComplementInfo* r = complement->FindBase("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->complement_def->ToString(), "(R minus project[X, Y](V1))");
  const BaseComplementInfo* s = complement->FindBase("S");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->complement_def->ToString(), "(S minus project[Y, Z](V1))");
  const BaseComplementInfo* t = complement->FindBase("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->complement_def->ToString(), "(T minus project[Z](V1))");
}

TEST(Example21Test, ComplementIsStrictlySmallerThanTrivial) {
  ScriptContext context = MustRun(std::string(kSchema) +
                                  "VIEW V1 AS R JOIN S JOIN T;");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  // Trivial complement: copy D. The computed one is <= pointwise, and
  // strictly smaller on this state (V1 is nonempty, so some tuples left
  // the complements).
  std::vector<ViewDef> trivial = {{"R", Expr::Base("R")},
                                  {"S", Expr::Base("S")},
                                  {"T", Expr::Base("T")}};
  std::vector<ViewDef> computed;
  for (const char* base : {"R", "S", "T"}) {
    computed.push_back(ViewDef{std::string("C") + base,
                               complement->FindBase(base)->complement_def});
  }
  // Materialize V1 so complement definitions (which reference V1) evaluate.
  Environment env = Environment::FromDatabase(context.db);
  Result<Relation> v1 = context.Evaluate(context.views[0].expr);
  DWC_ASSERT_OK(v1);
  env.Bind("V1", &v1.value());

  Result<bool> leq = ViewsLeqOnState(computed, trivial, env);
  DWC_ASSERT_OK(leq);
  EXPECT_TRUE(*leq);
  Result<size_t> computed_size = TotalTuples(computed, env);
  Result<size_t> trivial_size = TotalTuples(trivial, env);
  DWC_ASSERT_OK(computed_size);
  DWC_ASSERT_OK(trivial_size);
  EXPECT_LT(*computed_size, *trivial_size);
}

TEST(Example21Test, AddingSCopyEmptiesItsComplement) {
  // With V = {V1, V2 = S}, C'_S is always empty and the complement is
  // strictly smaller; the paper notes {V1, V2} is self-maintainable
  // (Huyn's example).
  ScriptContext context = MustRun(std::string(kSchema) +
                                  "VIEW V1 AS R JOIN S JOIN T;\n"
                                  "VIEW V2 AS S;");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  const BaseComplementInfo* s = complement->FindBase("S");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->provably_empty);
  // Only C_R and C_T remain materialized.
  ASSERT_EQ(complement->complements.size(), 2u);
  EXPECT_EQ(complement->complements[0].name, "C_R");
  EXPECT_EQ(complement->complements[1].name, "C_T");

  // S's inverse must reconstruct S from V2 alone (union with pi_YZ(V1) is
  // harmless). Verify extensionally.
  Environment env = Environment::FromDatabase(context.db);
  Result<Relation> v1 = context.Evaluate(context.views[0].expr);
  Result<Relation> v2 = context.Evaluate(context.views[1].expr);
  DWC_ASSERT_OK(v1);
  DWC_ASSERT_OK(v2);
  env.Bind("V1", &v1.value());
  env.Bind("V2", &v2.value());
  Result<Relation> reconstructed = EvalExpr(*s->inverse, env);
  DWC_ASSERT_OK(reconstructed);
  EXPECT_TRUE(testing::RelationsEqual(*reconstructed,
                                      *context.db.FindRelation("S")));
}

TEST(Example21Test, InversesReconstructAllBases) {
  ScriptContext context = MustRun(std::string(kSchema) +
                                  "VIEW V1 AS R JOIN S JOIN T;\n"
                                  "VIEW V2 AS S;");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  // Build the warehouse environment: views + materialized complements.
  Environment env = Environment::FromDatabase(context.db);
  std::vector<std::unique_ptr<Relation>> owned;
  for (const ViewDef& view : context.views) {
    Result<Relation> rel = context.Evaluate(view.expr);
    DWC_ASSERT_OK(rel);
    owned.push_back(std::make_unique<Relation>(std::move(rel).value()));
    env.Bind(view.name, owned.back().get());
  }
  for (const ViewDef& comp : complement->complements) {
    Result<Relation> rel = EvalExpr(*comp.expr, env);
    DWC_ASSERT_OK(rel);
    owned.push_back(std::make_unique<Relation>(std::move(rel).value()));
    env.Bind(comp.name, owned.back().get());
  }
  // Warehouse-only environment (no bases).
  Environment warehouse_env;
  for (const auto& [name, rel] : env.bindings()) {
    if (!context.catalog->HasRelation(name)) {
      warehouse_env.Bind(name, rel);
    }
  }
  for (const char* base : {"R", "S", "T"}) {
    const ExprRef& inverse = complement->inverses.at(base);
    Result<Relation> reconstructed = EvalExpr(*inverse, warehouse_env);
    DWC_ASSERT_OK(reconstructed);
    EXPECT_TRUE(testing::RelationsEqual(*reconstructed,
                                        *context.db.FindRelation(base)))
        << "base " << base;
  }
}

}  // namespace
}  // namespace dwc
