#include "core/warehouse_spec.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

TEST(WarehouseSpecTest, NullCatalogRejected) {
  Result<WarehouseSpec> spec = SpecifyWarehouse(nullptr, {});
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(WarehouseSpecTest, DuplicateViewNameRejected) {
  ScriptContext context = MustRun("CREATE TABLE R(a INT);");
  std::vector<ViewDef> views = {{"V", Expr::Base("R")},
                                {"V", Expr::Base("R")}};
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog, views);
  EXPECT_EQ(spec.status().code(), StatusCode::kAlreadyExists);
}

TEST(WarehouseSpecTest, ViewNamedLikeBaseRejected) {
  ScriptContext context = MustRun("CREATE TABLE R(a INT);");
  std::vector<ViewDef> views = {{"R", Expr::Base("R")}};
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog, views);
  EXPECT_EQ(spec.status().code(), StatusCode::kAlreadyExists);
}

TEST(WarehouseSpecTest, NonPsjViewRejected) {
  ScriptContext context = MustRun("CREATE TABLE R(a INT);");
  std::vector<ViewDef> views = {
      {"V", Expr::Union(Expr::Base("R"), Expr::Base("R"))}};
  Result<WarehouseSpec> spec = SpecifyWarehouse(context.catalog, views);
  EXPECT_FALSE(spec.ok());
}

TEST(WarehouseSpecTest, CustomComplementPrefix) {
  ScriptContext context = MustRun(R"(
CREATE TABLE R(a INT, b INT);
CREATE TABLE S(b INT, c INT);
VIEW V AS R JOIN S;
)");
  ComplementOptions options;
  options.name_prefix = "aux_";
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views, options);
  DWC_ASSERT_OK(spec);
  ASSERT_EQ(spec->complements().size(), 2u);
  EXPECT_EQ(spec->complements()[0].name, "aux_R");
  EXPECT_EQ(spec->complements()[1].name, "aux_S");
  EXPECT_NE(spec->FindWarehouseSchema("aux_R"), nullptr);
  EXPECT_NE(spec->FindInverse("R"), nullptr);
  EXPECT_EQ(spec->FindInverse("aux_R"), nullptr);
  EXPECT_EQ(spec->FindInverse("Nope"), nullptr);
}

TEST(WarehouseSpecTest, WarehouseSchemasExposed) {
  ScriptContext context = MustRun(R"(
CREATE TABLE R(a INT, b STRING);
VIEW V AS PROJECT[a](R);
)");
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views);
  DWC_ASSERT_OK(spec);
  const Schema* v = spec->FindWarehouseSchema("V");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->ToString(), "(a INT)");
  const Schema* c = spec->FindWarehouseSchema("C_R");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->ToString(), "(a INT, b STRING)");
  // Resolver covers both; base relations resolve to nothing.
  SchemaResolver resolver = spec->WarehouseResolver();
  EXPECT_NE(resolver("V"), nullptr);
  EXPECT_EQ(resolver("R"), nullptr);
}

TEST(WarehouseSpecTest, AllWarehouseViewsOrdered) {
  ScriptContext context = MustRun(R"(
CREATE TABLE R(a INT);
CREATE TABLE S(a INT);
VIEW V1 AS R;
VIEW V2 AS S;
)");
  Result<WarehouseSpec> spec =
      SpecifyWarehouse(context.catalog, context.views);
  DWC_ASSERT_OK(spec);
  std::vector<ViewDef> all = spec->AllWarehouseViews();
  // Views first (user order), then complements. Full copies make the
  // complements provably empty, so only the views remain.
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "V1");
  EXPECT_EQ(all[1].name, "V2");
  EXPECT_TRUE(spec->complements().empty());
}

}  // namespace
}  // namespace dwc
