// Section 6 future work: complements with non-base schemas, automated —
// and the reproduction finding that Example 2.2's recomputation identity
// is refutable as stated (it holds when the fragment overlap is a key).

#include "core/minimizer.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "core/complement.h"
#include "parser/interpreter.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

constexpr char kExample22[] = R"(
CREATE TABLE R(A INT, B INT, C INT);
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[B, C](R);
VIEW V3 AS SELECT[B = 1](R);
)";

// Example 2.2's schema with the overlap attribute declared a key: the join
// V1 |x| V2 is lossless and the identity is sound.
constexpr char kExample22Keyed[] = R"(
CREATE TABLE R(A INT, B INT, C INT, KEY(B));
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[B, C](R);
VIEW V3 AS SELECT[B = 1](R);
)";

TEST(MinimizerTest, BuildsThePaperExpression) {
  ScriptContext context = MustRun(kExample22);
  Rng rng(1);
  Result<ReducedComplement> reduced = TryProjectionFragmentComplement(
      context.views, *context.catalog, "CR", &rng, /*validation_rounds=*/0);
  DWC_ASSERT_OK(reduced);
  EXPECT_EQ(reduced->complement.expr->ToString(),
            "((R join project[A, B](((V1 join V2) minus R))) minus V3)");
  EXPECT_TRUE(reduced->validated);  // Vacuously: zero rounds.
}

TEST(MinimizerTest, RefutesThePaperIdentityWithoutKey) {
  // The randomized checker finds a counterexample to the Example 2.2
  // recomputation identity on the unconstrained schema (see the header of
  // core/minimizer.h and EXPERIMENTS.md).
  ScriptContext context = MustRun(kExample22);
  Rng rng(7);
  Result<ReducedComplement> reduced = TryProjectionFragmentComplement(
      context.views, *context.catalog, "CR", &rng, /*validation_rounds=*/500);
  DWC_ASSERT_OK(reduced);
  EXPECT_FALSE(reduced->validated);
  EXPECT_FALSE(reduced->counterexample.empty());
}

TEST(MinimizerTest, PaperCounterexampleReproducedExactly) {
  // The concrete refuting state: tuple (2,0,1) shares its BC fragment with
  // the complement tuple (3,0,1) and is lost by the reconstruction.
  ScriptContext context = MustRun(
      std::string(kExample22) +
      "INSERT INTO R VALUES (1,1,1), (2,0,1), (2,0,2), (2,1,1), (3,0,1);");
  Rng rng(1);
  Result<ReducedComplement> reduced = TryProjectionFragmentComplement(
      context.views, *context.catalog, "CR", &rng, /*validation_rounds=*/0);
  DWC_ASSERT_OK(reduced);

  Environment env = Environment::FromDatabase(context.db);
  std::vector<std::unique_ptr<Relation>> owned;
  for (const ViewDef& view : context.views) {
    owned.push_back(
        std::make_unique<Relation>(*context.Evaluate(view.expr)));
    env.Bind(view.name, owned.back().get());
  }
  Result<Relation> cr = EvalExpr(*reduced->complement.expr, env);
  DWC_ASSERT_OK(cr);
  EXPECT_EQ(cr->size(), 1u);
  EXPECT_TRUE(cr->Contains(
      Tuple({Value::Int(3), Value::Int(0), Value::Int(1)})));
  env.Bind("CR", &cr.value());
  Result<Relation> rebuilt = EvalExpr(*reduced->reconstruction, env);
  DWC_ASSERT_OK(rebuilt);
  // The identity fails: (2,0,1) is missing.
  EXPECT_FALSE(rebuilt->SameContentAs(*context.db.FindRelation("R")));
  EXPECT_FALSE(rebuilt->Contains(
      Tuple({Value::Int(2), Value::Int(0), Value::Int(1)})));
  EXPECT_EQ(rebuilt->size(), 4u);
}

TEST(MinimizerTest, ValidatesWhenOverlapIsAKey) {
  ScriptContext context = MustRun(kExample22Keyed);
  Rng rng(9);
  Result<ReducedComplement> reduced = TryProjectionFragmentComplement(
      context.views, *context.catalog, "CR", &rng, /*validation_rounds=*/500);
  DWC_ASSERT_OK(reduced);
  EXPECT_TRUE(reduced->validated) << reduced->counterexample;
}

TEST(MinimizerTest, PaperWitnessStateStillWorks) {
  // On the paper's single-tuple style states the identity does hold; the
  // reduced complement is empty while Prop 2.2's holds the tuple.
  ScriptContext context = MustRun(std::string(kExample22) +
                                  "INSERT INTO R VALUES (5, 6, 7);");
  Rng rng(1);
  Result<ReducedComplement> reduced = TryProjectionFragmentComplement(
      context.views, *context.catalog, "CR", &rng, /*validation_rounds=*/0);
  DWC_ASSERT_OK(reduced);

  Environment env = Environment::FromDatabase(context.db);
  std::vector<std::unique_ptr<Relation>> owned;
  for (const ViewDef& view : context.views) {
    owned.push_back(
        std::make_unique<Relation>(*context.Evaluate(view.expr)));
    env.Bind(view.name, owned.back().get());
  }
  Result<Relation> cr = EvalExpr(*reduced->complement.expr, env);
  DWC_ASSERT_OK(cr);
  EXPECT_TRUE(cr->empty());
  env.Bind("CR", &cr.value());
  Result<Relation> rebuilt = EvalExpr(*reduced->reconstruction, env);
  DWC_ASSERT_OK(rebuilt);
  EXPECT_TRUE(testing::RelationsEqual(*rebuilt,
                                      *context.db.FindRelation("R")));

  Result<ComplementResult> prop22 =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(prop22);
  Result<Relation> big =
      EvalExpr(*prop22->FindBase("R")->complement_def, env);
  DWC_ASSERT_OK(big);
  EXPECT_EQ(big->size(), 1u);  // Strictly smaller on this state.
}

TEST(MinimizerTest, RejectsShapesOutsideTheConstruction) {
  Rng rng(3);
  // Fragments that do not cover all attributes.
  ScriptContext partial = MustRun(R"(
CREATE TABLE R(A INT, B INT, C INT);
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[A, B](R);
)");
  EXPECT_EQ(TryProjectionFragmentComplement(partial.views, *partial.catalog,
                                            "CR", &rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Multi-relation warehouse.
  ScriptContext multi = MustRun(R"(
CREATE TABLE R(A INT, B INT);
CREATE TABLE S(B INT, C INT);
VIEW V1 AS PROJECT[A](R);
VIEW V2 AS PROJECT[C](S);
)");
  EXPECT_EQ(TryProjectionFragmentComplement(multi.views, *multi.catalog,
                                            "CR", &rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Three fragments.
  ScriptContext three = MustRun(R"(
CREATE TABLE R(A INT, B INT, C INT);
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[B, C](R);
VIEW V3 AS PROJECT[A, C](R);
)");
  EXPECT_EQ(TryProjectionFragmentComplement(three.views, *three.catalog,
                                            "CR", &rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dwc
