// E4 (DESIGN.md) — Example 2.2: for projection views Proposition 2.2 is not
// minimal; the paper's hand-crafted C'_R is a complement too and is smaller.
// Also exercises the Theorem 2.1 setting (SJ views) on concrete states.

#include <gtest/gtest.h>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "core/complement.h"
#include "core/ordering.h"
#include "parser/interpreter.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "workload/random_db.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

constexpr char kExample22Schema[] = R"(
CREATE TABLE R(A INT, B INT, C INT);
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[B, C](R);
VIEW V3 AS SELECT[B = 1](R);
)";

// The paper's smaller complement:
//   C'_R = (R |x| pi_AB((V1 |x| V2) \ R)) \ V3
constexpr char kSmallerComplement[] =
    "(R JOIN PROJECT[A, B]((V1 JOIN V2) MINUS R)) MINUS V3";
// and its recomputation formula:
//   R = C'_R U V3 U ((V1 \ pi_AB(C'_R U V3)) |x| (V2 \ pi_BC(C'_R U V3)))
constexpr char kRecomputation[] =
    "(CR UNION V3) UNION "
    "((V1 MINUS PROJECT[A, B](CR UNION V3)) JOIN "
    " (V2 MINUS PROJECT[B, C](CR UNION V3)))";

// Binds R plus materialized V1, V2, V3 and (optionally) the paper's C'_R.
class Example22Test : public ::testing::Test {
 protected:
  void Load(const std::string& inserts) {
    context_ = MustRun(std::string(kExample22Schema) + inserts);
    env_ = Environment::FromDatabase(context_.db);
    for (const ViewDef& view : context_.views) {
      Result<Relation> rel = context_.Evaluate(view.expr);
      DWC_ASSERT_OK(rel);
      owned_.push_back(std::make_unique<Relation>(std::move(rel).value()));
      env_.Bind(view.name, owned_.back().get());
    }
  }

  void MaterializeSmallerComplement() {
    Result<ExprRef> cr = ParseExpr(kSmallerComplement);
    DWC_ASSERT_OK(cr);
    Result<Relation> rel = EvalExpr(**cr, env_);
    DWC_ASSERT_OK(rel);
    owned_.push_back(std::make_unique<Relation>(std::move(rel).value()));
    env_.Bind("CR", owned_.back().get());
  }

  ScriptContext context_;
  Environment env_;
  std::vector<std::unique_ptr<Relation>> owned_;
};

TEST_F(Example22Test, Proposition22GivesRMinusV3) {
  Load("INSERT INTO R VALUES (1, 1, 1), (2, 2, 2);");
  Result<ComplementResult> complement =
      ComputeComplement(context_.views, *context_.catalog);
  DWC_ASSERT_OK(complement);
  const BaseComplementInfo* r = complement->FindBase("R");
  ASSERT_NE(r, nullptr);
  // Only V3 exposes all of attr(R): C_R = R \ pi_ABC(V3).
  EXPECT_EQ(r->complement_def->ToString(),
            "(R minus project[A, B, C](V3))");
}

TEST_F(Example22Test, SmallerComplementRecomputesR) {
  // On a state where the paper's C'_R is strictly smaller: a single tuple
  // (the join V1 |x| V2 is exactly R, so C'_R = empty while C_R = R \ V3).
  Load("INSERT INTO R VALUES (5, 6, 7);");
  MaterializeSmallerComplement();

  EXPECT_TRUE(env_.Find("CR")->empty());

  Result<ExprRef> recompute = ParseExpr(kRecomputation);
  DWC_ASSERT_OK(recompute);
  Result<Relation> reconstructed = EvalExpr(**recompute, env_);
  DWC_ASSERT_OK(reconstructed);
  EXPECT_TRUE(testing::RelationsEqual(*reconstructed,
                                      *context_.db.FindRelation("R")));

  // Proposition 2.2's complement is nonempty here: C'_R < C_R on this state.
  Result<ComplementResult> complement =
      ComputeComplement(context_.views, *context_.catalog);
  DWC_ASSERT_OK(complement);
  Result<Relation> prop22 =
      EvalExpr(*complement->FindBase("R")->complement_def, env_);
  DWC_ASSERT_OK(prop22);
  EXPECT_EQ(prop22->size(), 1u);
}

TEST_F(Example22Test, SmallerComplementRecomputesROnKeyUniqueStates) {
  // REPRODUCTION FINDING: the paper's recomputation identity does NOT hold
  // on arbitrary states (see minimizer_test.cc for the counterexample); it
  // does hold when B functionally determines the tuple. We sample random
  // B-unique states and assert the identity there, plus C'_R <= C_R
  // pointwise (which holds unconditionally: C' = (R |x| ...) \ V3 ⊆ R \ V3).
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    std::string inserts = "INSERT INTO R VALUES ";
    std::set<int64_t> used_b;
    size_t n = 1 + rng.Below(6);
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      int64_t b = rng.Range(0, 7);
      if (!used_b.insert(b).second) {
        continue;  // Keep B unique.
      }
      if (!first) {
        inserts += ", ";
      }
      first = false;
      inserts += "(" + std::to_string(rng.Range(0, 3)) + ", " +
                 std::to_string(b) + ", " + std::to_string(rng.Range(0, 3)) +
                 ")";
    }
    if (first) {
      continue;  // Empty state this round.
    }
    inserts += ";";
    owned_.clear();
    Load(inserts);
    MaterializeSmallerComplement();

    Result<ExprRef> recompute = ParseExpr(kRecomputation);
    DWC_ASSERT_OK(recompute);
    Result<Relation> reconstructed = EvalExpr(**recompute, env_);
    DWC_ASSERT_OK(reconstructed);
    ASSERT_TRUE(testing::RelationsEqual(*reconstructed,
                                        *context_.db.FindRelation("R")))
        << "round " << round << " inserts " << inserts;

    // And C'_R <= C_R pointwise.
    Result<ComplementResult> complement =
        ComputeComplement(context_.views, *context_.catalog);
    DWC_ASSERT_OK(complement);
    Result<Relation> big =
        EvalExpr(*complement->FindBase("R")->complement_def, env_);
    DWC_ASSERT_OK(big);
    const Relation* small = env_.Find("CR");
    for (const Tuple& tuple : small->tuples()) {
      ASSERT_TRUE(big->Contains(tuple));
    }
  }
}

TEST(Theorem21Test, SjViewComplementsAreMinimalShaped) {
  // For SJ views (no projection) Proposition 2.2 is minimal. Sanity-check
  // the shape: every complement is R_i \ union of full projections.
  ScriptContext context = MustRun(R"(
CREATE TABLE R(A INT, B INT);
CREATE TABLE S(B INT, C INT);
INSERT INTO R VALUES (1, 2), (3, 4);
INSERT INTO S VALUES (2, 5), (9, 9);
VIEW W1 AS R JOIN S;
VIEW W2 AS SELECT[C = 5](S);
)");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);
  EXPECT_EQ(complement->FindBase("R")->complement_def->ToString(),
            "(R minus project[A, B](W1))");
  EXPECT_EQ(
      complement->FindBase("S")->complement_def->ToString(),
      "(S minus (project[B, C](W1) union project[B, C](W2)))");
}

}  // namespace
}  // namespace dwc
