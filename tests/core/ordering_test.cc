#include "core/ordering.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::I;
using ::dwc::testing::MustRun;

class OrderingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    context_ = MustRun(R"(
CREATE TABLE R(a INT, b INT);
INSERT INTO R VALUES (1, 10), (2, 20), (3, 30);
)");
    env_ = Environment::FromDatabase(context_.db);
  }

  ExprRef E(const std::string& text) {
    Result<ExprRef> expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok());
    return *expr;
  }

  ScriptContext context_;
  Environment env_;
};

TEST_F(OrderingTest, LeqOnState) {
  Result<bool> leq =
      ViewLeqOnState(E("select[a >= 2](R)"), E("R"), env_);
  DWC_ASSERT_OK(leq);
  EXPECT_TRUE(*leq);
  leq = ViewLeqOnState(E("R"), E("select[a >= 2](R)"), env_);
  DWC_ASSERT_OK(leq);
  EXPECT_FALSE(*leq);
  // Equal views are mutually <=.
  leq = ViewLeqOnState(E("R"), E("R union R"), env_);
  DWC_ASSERT_OK(leq);
  EXPECT_TRUE(*leq);
}

TEST_F(OrderingTest, LeqHandlesColumnOrder) {
  Result<bool> leq = ViewLeqOnState(
      E("project[b, a](select[a = 1](R))"), E("project[a, b](R)"), env_);
  DWC_ASSERT_OK(leq);
  EXPECT_TRUE(*leq);
}

TEST_F(OrderingTest, LeqRejectsDifferentSchemas) {
  Result<bool> leq = ViewLeqOnState(E("project[a](R)"), E("R"), env_);
  EXPECT_EQ(leq.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OrderingTest, ViewsLeqPairwise) {
  std::vector<ViewDef> u = {{"u1", E("select[a = 1](R)")},
                            {"u2", E("select[b >= 20](R)")}};
  std::vector<ViewDef> v = {{"v1", E("R")}, {"v2", E("R")}};
  Result<bool> leq = ViewsLeqOnState(u, v, env_);
  DWC_ASSERT_OK(leq);
  EXPECT_TRUE(*leq);
  leq = ViewsLeqOnState(v, u, env_);
  DWC_ASSERT_OK(leq);
  EXPECT_FALSE(*leq);
  // Length mismatch is an error.
  std::vector<ViewDef> w = {{"w1", E("R")}};
  EXPECT_FALSE(ViewsLeqOnState(u, w, env_).ok());
}

TEST_F(OrderingTest, TotalTuples) {
  std::vector<ViewDef> views = {{"v1", E("R")},
                                {"v2", E("select[a >= 2](R)")},
                                {"v3", E("project[a](R)")}};
  Result<size_t> total = TotalTuples(views, env_);
  DWC_ASSERT_OK(total);
  EXPECT_EQ(*total, 3u + 2u + 3u);
  EXPECT_FALSE(TotalTuples({{"bad", E("Nope")}}, env_).ok());
}

}  // namespace
}  // namespace dwc
