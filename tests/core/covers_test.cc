// E5 (DESIGN.md) — Example 2.3: V_{K1}, V^ind_{K1} and the five covers of
// R1; plus unit tests of the minimal-cover enumerator.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/complement.h"
#include "core/warehouse_spec.h"
#include "warehouse/warehouse.h"
#include "core/covers.h"
#include "parser/interpreter.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

using ::dwc::testing::MustRun;

constexpr char kExample23[] = R"(
CREATE TABLE R1(A INT, B INT, C INT, KEY(A));
CREATE TABLE R2(A INT, C INT, D INT, KEY(A));
CREATE TABLE R3(A INT, B INT, KEY(A));
INCLUSION R3(A, B) SUBSETOF R1(A, B);
INCLUSION R2(A, C) SUBSETOF R1(A, C);
INSERT INTO R1 VALUES (1, 11, 21), (2, 12, 22), (3, 13, 23);
INSERT INTO R2 VALUES (1, 21, 31), (2, 22, 32);
INSERT INTO R3 VALUES (1, 11), (3, 13);
VIEW V1 AS R1 JOIN R2;
VIEW V2 AS R3;
VIEW V3 AS PROJECT[A, B](R1);
VIEW V4 AS PROJECT[A, C](R1);
)";

TEST(Example23Test, FiveCoversOfR1) {
  ScriptContext context = MustRun(kExample23);
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  const BaseComplementInfo* r1 = complement->FindBase("R1");
  ASSERT_NE(r1, nullptr);
  // The paper's C^ind_{R1}:
  //   {V1}, {V3, V4}, {pi_AB(R3), V4}, {V3, pi_AC(R2)}, {pi_AB(R3), pi_AC(R2)}
  std::set<std::set<std::string>> covers;
  for (const auto& labels : r1->cover_labels) {
    covers.insert(std::set<std::string>(labels.begin(), labels.end()));
  }
  std::set<std::set<std::string>> expected = {
      {"V1"},
      {"V3", "V4"},
      {"project[A, B](R3)", "V4"},
      {"V3", "project[A, C](R2)"},
      {"project[A, B](R3)", "project[A, C](R2)"},
  };
  EXPECT_EQ(covers, expected);
}

TEST(Example23Test, KeysAndIndsEmptyAllComplements) {
  ScriptContext context = MustRun(kExample23);
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  // Cover {V3, V4} consists of pure fragments of R1: C1 = empty. V2 copies
  // R3 verbatim: C3 = empty. The paper keeps C2 = R2 \ pi_ACD(V1) without
  // further analysis, but under the declared IND AC(R2) <= AC(R1) every R2
  // tuple has a join partner in R1, so C2 is also always empty — our static
  // totality check (the Example 2.4 argument) detects this.
  EXPECT_TRUE(complement->FindBase("R1")->provably_empty);
  EXPECT_TRUE(complement->FindBase("R2")->provably_empty);
  EXPECT_TRUE(complement->FindBase("R3")->provably_empty);
  EXPECT_TRUE(complement->complements.empty());
  // Nonetheless R2's paper-form complement expression is recorded:
  EXPECT_EQ(complement->FindBase("R2")->rhat->ToString(),
            "project[A, C, D](V1)");
}

TEST(Example23Test, WithoutIndsC2Stays) {
  // Dropping the INDs (keys only) restores the paper's listing exactly:
  // C1 = empty (lossless {V3,V4} cover), C2 = R2 \ pi_ACD(V1) materialized,
  // C3 = empty (verbatim copy).
  ScriptContext context = MustRun(R"(
CREATE TABLE R1(A INT, B INT, C INT, KEY(A));
CREATE TABLE R2(A INT, C INT, D INT, KEY(A));
CREATE TABLE R3(A INT, B INT, KEY(A));
INSERT INTO R1 VALUES (1, 11, 21), (2, 12, 22), (3, 13, 23);
INSERT INTO R2 VALUES (1, 21, 31), (2, 22, 32);
INSERT INTO R3 VALUES (1, 11), (3, 13);
VIEW V1 AS R1 JOIN R2;
VIEW V2 AS R3;
VIEW V3 AS PROJECT[A, B](R1);
VIEW V4 AS PROJECT[A, C](R1);
)");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);
  EXPECT_TRUE(complement->FindBase("R1")->provably_empty);
  EXPECT_FALSE(complement->FindBase("R2")->provably_empty);
  EXPECT_TRUE(complement->FindBase("R3")->provably_empty);
  ASSERT_EQ(complement->complements.size(), 1u);
  EXPECT_EQ(complement->complements[0].name, "C_R2");
  EXPECT_EQ(complement->complements[0].expr->ToString(),
            "(R2 minus project[A, C, D](V1))");
}

TEST(Example23Test, WithoutConstraintsV3V4AreUseless) {
  // "assume first that there are no constraints. Then ... V3 and V4 are of
  // no use ... C1 = R1 \ pi_ABC(V1), C2 = R2 \ pi_ACD(V1), C3 = R3 \ V2".
  ScriptContext context = MustRun(kExample23);
  ComplementOptions options;
  options.use_constraints = false;
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog, options);
  DWC_ASSERT_OK(complement);

  const BaseComplementInfo* r1 = complement->FindBase("R1");
  ASSERT_NE(r1, nullptr);
  EXPECT_FALSE(r1->provably_empty);
  EXPECT_EQ(r1->complement_def->ToString(),
            "(R1 minus project[A, B, C](V1))");
  EXPECT_TRUE(r1->cover_labels.empty());
  const BaseComplementInfo* r2 = complement->FindBase("R2");
  EXPECT_EQ(r2->complement_def->ToString(),
            "(R2 minus project[A, C, D](V1))");
  // V2 = R3 is a verbatim copy, so C3 is empty even without constraints
  // (the paper writes C3 = R3 \ V2 = empty).
  EXPECT_TRUE(complement->FindBase("R3")->provably_empty);
}

TEST(Example23Test, IndVariantInverseUsesWarehouseOnly) {
  // The "continued" variant: V' = {V1, V3}, key A on both, and the IND
  // AC(R2) <= AC(R1). R1's inverse must route pi_AC(R2) through R2's own
  // inverse (Equation (4)).
  ScriptContext context = MustRun(R"(
CREATE TABLE R1(A INT, B INT, C INT, KEY(A));
CREATE TABLE R2(A INT, C INT, D INT, KEY(A));
INCLUSION R2(A, C) SUBSETOF R1(A, C);
INSERT INTO R1 VALUES (1, 11, 21), (2, 12, 22), (3, 13, 23);
INSERT INTO R2 VALUES (1, 21, 31), (2, 22, 32);
VIEW V1 AS R1 JOIN R2;
VIEW V3 AS PROJECT[A, B](R1);
)");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);

  const BaseComplementInfo* r1 = complement->FindBase("R1");
  ASSERT_NE(r1, nullptr);
  // Covers: {V1} and {V3, pi_AC(R2)}.
  ASSERT_EQ(r1->cover_labels.size(), 2u);
  // The inverse references only warehouse names (C_R1, C_R2, V1, V3).
  for (const std::string& name : r1->inverse->ReferencedNames()) {
    EXPECT_TRUE(name == "C_R1" || name == "C_R2" || name == "V1" ||
                name == "V3")
        << "unexpected reference to '" << name << "' in "
        << r1->inverse->ToString();
  }
}

// --- Unit tests of the enumerator itself.

CoverCandidate MakeCandidate(const std::string& label,
                             std::initializer_list<const char*> attrs) {
  CoverCandidate candidate;
  candidate.label = label;
  candidate.expr = Expr::Base(label);
  for (const char* attr : attrs) {
    candidate.attrs.insert(attr);
  }
  return candidate;
}

TEST(EnumerateMinimalCoversTest, EmptyTargetHasOneEmptyCover) {
  std::vector<Cover> covers = EnumerateMinimalCovers({}, {}, 10);
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_TRUE(covers[0].empty());
}

TEST(EnumerateMinimalCoversTest, UncoverableTargetHasNoCovers) {
  std::vector<CoverCandidate> candidates = {MakeCandidate("X", {"a"})};
  std::vector<Cover> covers =
      EnumerateMinimalCovers(candidates, {"a", "b"}, 10);
  EXPECT_TRUE(covers.empty());
}

TEST(EnumerateMinimalCoversTest, SupersetsAreNotReported) {
  // {big} covers alone; {small1, small2} also covers; {big, small1} is not
  // minimal and must not appear.
  std::vector<CoverCandidate> candidates = {
      MakeCandidate("big", {"a", "b"}),
      MakeCandidate("small1", {"a"}),
      MakeCandidate("small2", {"b"}),
  };
  std::vector<Cover> covers =
      EnumerateMinimalCovers(candidates, {"a", "b"}, 100);
  std::set<std::set<size_t>> result;
  for (const Cover& cover : covers) {
    result.insert(std::set<size_t>(cover.begin(), cover.end()));
  }
  std::set<std::set<size_t>> expected = {{0}, {1, 2}};
  EXPECT_EQ(result, expected);
}

TEST(EnumerateMinimalCoversTest, RespectsMaxCovers) {
  // n candidates each covering {a}: n minimal singleton covers.
  std::vector<CoverCandidate> candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.push_back(MakeCandidate("c" + std::to_string(i), {"a"}));
  }
  std::vector<Cover> covers = EnumerateMinimalCovers(candidates, {"a"}, 3);
  EXPECT_EQ(covers.size(), 3u);
}

TEST(EnumerateMinimalCoversTest, OverlappingCandidates) {
  std::vector<CoverCandidate> candidates = {
      MakeCandidate("ab", {"a", "b"}),
      MakeCandidate("bc", {"b", "c"}),
      MakeCandidate("ac", {"a", "c"}),
  };
  std::vector<Cover> covers =
      EnumerateMinimalCovers(candidates, {"a", "b", "c"}, 100);
  // Any two of the three cover; all three is non-minimal.
  EXPECT_EQ(covers.size(), 3u);
  for (const Cover& cover : covers) {
    EXPECT_EQ(cover.size(), 2u);
  }
}


TEST(Footnote3Test, RenamingIndsContributeCoverCandidates) {
  // Footnote 3: a general IND R4(K, BB) <= R1(A, B) is incorporated by
  // renaming: the candidate is rename[BB->B, K->A](project[K, BB](R4)).
  ScriptContext context = MustRun(R"(
CREATE TABLE R1(A INT, B INT, KEY(A));
CREATE TABLE R4(K INT, BB INT, KEY(K));
INCLUSION R4(K, BB) SUBSETOF R1(A, B);
INSERT INTO R1 VALUES (1, 10), (2, 20), (3, 30);
INSERT INTO R4 VALUES (1, 10), (3, 30);
VIEW V1 AS PROJECT[A](R1);
VIEW V2 AS R4;
)");
  Result<ComplementResult> complement =
      ComputeComplement(context.views, *context.catalog);
  DWC_ASSERT_OK(complement);
  const BaseComplementInfo* r1 = complement->FindBase("R1");
  ASSERT_NE(r1, nullptr);
  // One cover: the renamed IND fragment alone (it carries both A and B).
  ASSERT_EQ(r1->cover_labels.size(), 1u);
  EXPECT_EQ(r1->cover_labels[0][0],
            "rename[BB->B, K->A](project[K, BB](R4))");
  // End-to-end: the warehouse reconstructs both bases exactly.
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(context.catalog, context.views));
  Result<Warehouse> warehouse = Warehouse::Load(spec, context.db);
  DWC_ASSERT_OK(warehouse);
  Result<Database> reconstructed = warehouse->ReconstructSources();
  DWC_ASSERT_OK(reconstructed);
  EXPECT_TRUE(reconstructed->SameStateAs(context.db));
  // The tuple (2, 20) has no R4 counterpart: it must sit in C_R1.
  const Relation* c_r1 = warehouse->FindRelation("C_R1");
  ASSERT_NE(c_r1, nullptr);
  EXPECT_EQ(c_r1->size(), 1u);
  EXPECT_TRUE(c_r1->Contains(
      Tuple({Value::Int(2), Value::Int(20)})));
}

}  // namespace
}  // namespace dwc
