#include "core/psj.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

class PsjTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DWC_ASSERT_OK(catalog_.AddRelation(
        "R", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
    DWC_ASSERT_OK(catalog_.AddRelation(
        "S", Schema({{"b", ValueType::kInt}, {"c", ValueType::kInt}})));
  }

  Result<PsjView> Analyze(const std::string& text) {
    Result<ExprRef> expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return AnalyzePsj(ViewDef{"V", *expr}, catalog_);
  }

  Catalog catalog_;
};

TEST_F(PsjTest, PlainBase) {
  Result<PsjView> view = Analyze("R");
  DWC_ASSERT_OK(view);
  EXPECT_EQ(view->bases, std::vector<std::string>{"R"});
  EXPECT_EQ(view->attrs, (AttrSet{"a", "b"}));
  EXPECT_TRUE(view->is_sj);
  EXPECT_EQ(view->predicate->kind(), Predicate::Kind::kTrue);
}

TEST_F(PsjTest, FullForm) {
  Result<PsjView> view = Analyze("project[a, c](select[a = 1](R join S))");
  DWC_ASSERT_OK(view);
  EXPECT_EQ(view->bases, (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(view->attrs, (AttrSet{"a", "c"}));
  EXPECT_FALSE(view->is_sj);
  EXPECT_EQ(view->predicate->ToString(), "(true and a = 1)");
}

TEST_F(PsjTest, SelectionsPushedBelowJoinsNormalize) {
  Result<PsjView> view = Analyze("select[a = 1](R) join select[c = 2](S)");
  DWC_ASSERT_OK(view);
  EXPECT_EQ(view->bases, (std::vector<std::string>{"R", "S"}));
  AttrSet predicate_attrs = view->predicate->Attributes();
  EXPECT_EQ(predicate_attrs, (AttrSet{"a", "c"}));
  EXPECT_TRUE(view->is_sj);
}

TEST_F(PsjTest, StackedPrefixNormalizes) {
  // Outermost projection wins; selections conjoin.
  Result<PsjView> view =
      Analyze("project[a](select[b = 1](project[a, b](select[a >= 0](R))))");
  DWC_ASSERT_OK(view);
  EXPECT_EQ(view->attrs, (AttrSet{"a"}));
  EXPECT_EQ(view->predicate->Attributes(), (AttrSet{"a", "b"}));
}

TEST_F(PsjTest, RejectsNonPsjOperators) {
  EXPECT_FALSE(Analyze("R union R").ok());
  EXPECT_FALSE(Analyze("R minus R").ok());
  EXPECT_FALSE(Analyze("rename[a -> x](R)").ok());
  EXPECT_FALSE(Analyze("R join (project[b](S) join S)").ok());
  EXPECT_FALSE(Analyze("empty[a INT]").ok());
}

TEST_F(PsjTest, RejectsUnknownRelationsAndSelfJoins) {
  Result<PsjView> unknown = Analyze("R join Zed");
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  Result<PsjView> self_join = Analyze("R join S join R");
  EXPECT_EQ(self_join.status().code(), StatusCode::kUnimplemented);
}

TEST_F(PsjTest, RejectsBadAttributes) {
  EXPECT_FALSE(Analyze("project[zz](R)").ok());
  EXPECT_FALSE(Analyze("select[zz = 1](R)").ok());
}

TEST_F(PsjTest, ProjectOntoSchemaConvention) {
  Schema r_schema = *catalog_.FindSchema("R");
  // All attributes visible: a projection in schema order.
  ExprRef proj = ProjectOntoSchema(Expr::Base("V"), {"a", "b", "c"}, r_schema);
  EXPECT_EQ(proj->ToString(), "project[a, b](V)");
  // Missing attribute: the empty relation over R's schema.
  ExprRef empty = ProjectOntoSchema(Expr::Base("V"), {"a", "c"}, r_schema);
  EXPECT_EQ(empty->kind(), Expr::Kind::kEmpty);
  EXPECT_EQ(empty->empty_schema(), r_schema);
}

TEST_F(PsjTest, InvolvesBase) {
  Result<PsjView> view = Analyze("R join S");
  DWC_ASSERT_OK(view);
  EXPECT_TRUE(view->InvolvesBase("R"));
  EXPECT_TRUE(view->InvolvesBase("S"));
  EXPECT_FALSE(view->InvolvesBase("T"));
}

}  // namespace
}  // namespace dwc
