#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace dwc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("widget missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "widget missing");
  EXPECT_EQ(status.ToString(), "NotFound: widget missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kAborted,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, GovernorCodes) {
  Status deadline = Status::DeadlineExceeded("query ran past 5ms");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(StatusCodeName(deadline.code()), "DeadlineExceeded");
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: query ran past 5ms");

  Status budget = Status::ResourceExhausted("tuple budget spent");
  EXPECT_FALSE(budget.ok());
  EXPECT_EQ(budget.code(), StatusCode::kResourceExhausted);
  EXPECT_STREQ(StatusCodeName(budget.code()), "ResourceExhausted");
  EXPECT_EQ(budget.ToString(), "ResourceExhausted: tuple budget spent");
}

Status FailsThrough() {
  DWC_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::OutOfRange("not positive");
  }
  return x;
}

Result<int> Doubled(int x) {
  DWC_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 7);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("CrEaTe TaBlE"), "create table");
}

TEST(StringUtilTest, JoinAndStrCat) {
  EXPECT_EQ(Join(std::vector<std::string>{"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, RangeInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceBounds) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.25) ? 1 : 0;
  }
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(HashTest, CombineChangesWithInputs) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 7), HashCombine(0, 8));
}

}  // namespace
}  // namespace dwc
