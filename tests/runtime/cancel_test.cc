#include "runtime/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "testing/test_util.h"
#include "util/status.h"

namespace dwc {
namespace {

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_EQ(token.budget_tuples(), 0u);
  DWC_EXPECT_OK(token.Check());
  DWC_EXPECT_OK(token.Charge(1u << 20));
  DWC_EXPECT_OK(token.Check());
  EXPECT_EQ(token.RemainingBudget(), std::numeric_limits<size_t>::max());
}

TEST(CancelTokenTest, CancelSurfacesAsAborted) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  Status status = token.Check();
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST(CancelTokenTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  auto token = CancelToken::WithDeadline(std::chrono::milliseconds(-1));
  Status status = token->Check();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlinePasses) {
  auto token = CancelToken::WithDeadline(std::chrono::hours(1));
  DWC_EXPECT_OK(token->Check());
}

TEST(CancelTokenTest, BudgetExhaustionSurfacesAsResourceExhausted) {
  auto token = CancelToken::WithBudget(100);
  DWC_EXPECT_OK(token->Charge(60));
  EXPECT_EQ(token->RemainingBudget(), 40u);
  DWC_EXPECT_OK(token->Charge(40));  // Exactly at budget: still fine.
  EXPECT_EQ(token->RemainingBudget(), 0u);
  Status over = token->Charge(1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // Once over, Check() fails too — later morsels fail fast without
  // charging anything further.
  EXPECT_EQ(token->Check().code(), StatusCode::kResourceExhausted);
}

TEST(CancelTokenTest, CheckOrdersCancelBeforeBudgetBeforeDeadline) {
  auto token = CancelToken::WithBudget(1);
  token->set_deadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  ASSERT_EQ(token->Charge(5).code(), StatusCode::kResourceExhausted);
  // Budget beats the (also expired) deadline...
  EXPECT_EQ(token->Check().code(), StatusCode::kResourceExhausted);
  // ...and an explicit cancel beats both.
  token->Cancel();
  EXPECT_EQ(token->Check().code(), StatusCode::kAborted);
}

TEST(CancelTokenTest, ChargeIsThreadSafe) {
  // 8 threads x 1000 charges of 1 against a budget of 4000: exactly the
  // first 4000 must succeed regardless of interleaving.
  auto token = CancelToken::WithBudget(4000);
  std::atomic<size_t> ok_charges{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (token->Charge(1).ok()) {
          ok_charges.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ok_charges.load(), 4000u);
  EXPECT_EQ(token->charged_tuples(), 8000u);
  EXPECT_EQ(token->Check().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dwc
