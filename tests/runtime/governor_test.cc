#include "runtime/governor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "testing/test_util.h"

namespace dwc {
namespace {

GovernorOptions SmallOptions() {
  GovernorOptions options;
  options.max_concurrent_reads = 2;
  options.max_concurrent_maintenance = 1;
  options.max_read_queue = 3;
  options.max_maintenance_queue = 2;
  options.stale_only_queue_depth = 2;
  options.maintenance_only_queue_depth = 3;
  options.stale_only_epoch_lag = 4;
  options.maintenance_only_epoch_lag = 8;
  return options;
}

TEST(GovernorTest, AdmitsWithinLimitsAndReleasesViaRaii) {
  Governor governor(SmallOptions());
  {
    Result<Governor::Ticket> a = governor.AdmitRead();
    Result<Governor::Ticket> b = governor.AdmitRead();
    DWC_ASSERT_OK(a);
    DWC_ASSERT_OK(b);
    EXPECT_TRUE(a->valid());
    EXPECT_FALSE(a->stale_only());
  }
  // Both tickets released on scope exit: two more reads fit.
  DWC_ASSERT_OK(governor.AdmitRead());
  GovernorStats stats = governor.stats();
  EXPECT_EQ(stats.admitted_reads, 3u);
  EXPECT_EQ(stats.rejected_reads, 0u);
}

TEST(GovernorTest, ClassesHaveIndependentSlots) {
  Governor governor(SmallOptions());
  Result<Governor::Ticket> read = governor.AdmitRead();
  Result<Governor::Ticket> maintenance = governor.AdmitMaintenance();
  DWC_ASSERT_OK(read);
  DWC_ASSERT_OK(maintenance);
  GovernorStats stats = governor.stats();
  EXPECT_EQ(stats.admitted_reads, 1u);
  EXPECT_EQ(stats.admitted_maintenance, 1u);
}

TEST(GovernorTest, QueueTimeDeadlineSurfacesAsDeadlineExceeded) {
  GovernorOptions options = SmallOptions();
  options.max_concurrent_reads = 1;
  Governor governor(options);
  Result<Governor::Ticket> holder = governor.AdmitRead();
  DWC_ASSERT_OK(holder);
  auto token = CancelToken::WithDeadline(std::chrono::milliseconds(20));
  Result<Governor::Ticket> queued = governor.AdmitRead(token.get());
  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(governor.stats().timed_out_reads, 1u);
}

TEST(GovernorTest, ReleasingASlotWakesAQueuedWaiter) {
  GovernorOptions options = SmallOptions();
  options.max_concurrent_reads = 1;
  Governor governor(options);
  Result<Governor::Ticket> holder = governor.AdmitRead();
  DWC_ASSERT_OK(holder);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Result<Governor::Ticket> ticket = governor.AdmitRead();
    EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
    admitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));
  holder->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load(std::memory_order_acquire));
}

TEST(GovernorTest, EpochLagClimbsTheLadder) {
  Governor governor(SmallOptions());
  EXPECT_EQ(governor.level(), LoadLevel::kNormal);

  governor.ReportEpochLag(4);  // stale_only_epoch_lag
  EXPECT_EQ(governor.level(), LoadLevel::kStaleOnly);
  // A fresh-snapshot read is shed; a stale-capable one is admitted and
  // marked.
  Result<Governor::Ticket> fresh = governor.AdmitRead();
  ASSERT_FALSE(fresh.ok());
  EXPECT_EQ(fresh.status().code(), StatusCode::kResourceExhausted);
  Result<Governor::Ticket> stale =
      governor.AdmitRead(nullptr, /*allow_stale=*/true);
  DWC_ASSERT_OK(stale);
  EXPECT_TRUE(stale->stale_only());

  governor.ReportEpochLag(8);  // maintenance_only_epoch_lag
  EXPECT_EQ(governor.level(), LoadLevel::kMaintenanceOnly);
  // Reads are refused outright — even stale-capable ones — but maintenance
  // still runs (that is the point of the level).
  Result<Governor::Ticket> any =
      governor.AdmitRead(nullptr, /*allow_stale=*/true);
  ASSERT_FALSE(any.ok());
  EXPECT_EQ(any.status().code(), StatusCode::kResourceExhausted);
  DWC_ASSERT_OK(governor.AdmitMaintenance());

  governor.ReportEpochLag(0);
  EXPECT_EQ(governor.level(), LoadLevel::kNormal);
  GovernorStats stats = governor.stats();
  EXPECT_EQ(stats.shed_reads, 2u);
  EXPECT_EQ(stats.stale_reads, 1u);
}

TEST(GovernorTest, FullQueueRejectsInsteadOfWaiting) {
  GovernorOptions options = SmallOptions();
  options.max_concurrent_maintenance = 1;
  options.max_maintenance_queue = 0;
  Governor governor(options);
  Result<Governor::Ticket> holder = governor.AdmitMaintenance();
  DWC_ASSERT_OK(holder);
  // Queue bound is zero: the next request cannot even wait.
  Result<Governor::Ticket> overflow = governor.AdmitMaintenance();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.stats().rejected_maintenance, 1u);
}

TEST(GovernorTest, RaisingLimitsWakesWaiters) {
  GovernorOptions options = SmallOptions();
  options.max_concurrent_reads = 1;
  Governor governor(options);
  Result<Governor::Ticket> holder = governor.AdmitRead();
  DWC_ASSERT_OK(holder);
  std::thread waiter([&] {
    Result<Governor::Ticket> ticket = governor.AdmitRead();
    EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  options.max_concurrent_reads = 2;
  governor.set_options(options);
  waiter.join();
}

TEST(GovernorTest, ConcurrencyNeverExceedsTheLimit) {
  GovernorOptions options = SmallOptions();
  options.max_concurrent_reads = 3;
  options.max_read_queue = 64;
  Governor governor(options);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 12; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Result<Governor::Ticket> ticket = governor.AdmitRead();
        if (!ticket.ok()) {
          // Queue overflow is legal under this storm; nothing else is.
          EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        int now = running.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        std::this_thread::yield();
        running.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_LE(peak.load(), 3);
  EXPECT_GT(governor.stats().admitted_reads, 0u);
}

TEST(GovernorTest, StatsAndNamesRender) {
  Governor governor(SmallOptions());
  DWC_ASSERT_OK(governor.AdmitRead());
  std::string rendered = governor.stats().ToString();
  EXPECT_NE(rendered.find("level=normal"), std::string::npos);
  EXPECT_NE(rendered.find("admitted=1/0"), std::string::npos);
  EXPECT_EQ(std::string(WorkClassName(WorkClass::kRead)), "read");
  EXPECT_EQ(std::string(WorkClassName(WorkClass::kMaintenance)),
            "maintenance");
  EXPECT_EQ(std::string(LoadLevelName(LoadLevel::kStaleOnly)), "stale-only");
}

}  // namespace
}  // namespace dwc
