#include "runtime/breaker.h"

#include <gtest/gtest.h>

#include <string>

namespace dwc {
namespace {

BreakerOptions FastOptions() {
  BreakerOptions options;
  options.failure_threshold = 2;
  options.open_ticks = 4;
  options.max_open_ticks = 16;
  options.jitter_seed = 7;
  return options;
}

// Ticks until the breaker leaves kOpen; bounded so a stuck window fails the
// test instead of hanging it.
void TickUntilHalfOpen(CircuitBreaker* breaker) {
  for (int i = 0; i < 1000 && breaker->state() == CircuitBreaker::State::kOpen;
       ++i) {
    breaker->Tick();
  }
  ASSERT_EQ(breaker->state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, StartsClosedAndAllowsProbes) {
  CircuitBreaker breaker(FastOptions());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowProbe());
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, TripsAtThresholdAndBlocks) {
  CircuitBreaker breaker(FastOptions());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowProbe());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowProbe());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_GT(breaker.open_ticks_remaining(), 0u);
}

TEST(CircuitBreakerTest, SuccessWhileClosedResetsTheFailureStreak) {
  CircuitBreaker breaker(FastOptions());
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  // Two failures total, but never two *consecutive*: still closed.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, OpenToHalfOpenToClosedRecovery) {
  CircuitBreaker breaker(FastOptions());
  breaker.RecordFailure();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  TickUntilHalfOpen(&breaker);
  EXPECT_TRUE(breaker.AllowProbe());
  EXPECT_EQ(breaker.probes(), 1u);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithLongerWindow) {
  BreakerOptions options = FastOptions();
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  TickUntilHalfOpen(&breaker);
  breaker.RecordFailure();  // Probe failed.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // Doubled base window: at least 2*open_ticks (jitter only adds).
  EXPECT_GE(breaker.open_ticks_remaining(), 2 * options.open_ticks);
  // And the backoff is capped: after many failed probes the window never
  // exceeds max_open_ticks + jitter.
  for (int round = 0; round < 10; ++round) {
    TickUntilHalfOpen(&breaker);
    breaker.RecordFailure();
  }
  EXPECT_LE(breaker.open_ticks_remaining(),
            options.max_open_ticks + options.open_ticks);
}

TEST(CircuitBreakerTest, SuccessfulProbeResetsTheBackoffExponent) {
  BreakerOptions options = FastOptions();
  CircuitBreaker breaker(options);
  // Trip, fail a probe (doubling the window), then recover.
  breaker.RecordFailure();
  breaker.RecordFailure();
  TickUntilHalfOpen(&breaker);
  breaker.RecordFailure();
  TickUntilHalfOpen(&breaker);
  breaker.RecordSuccess();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A fresh trip starts from the base window again.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_LE(breaker.open_ticks_remaining(), 2 * options.open_ticks - 1);
}

TEST(CircuitBreakerTest, DeterministicForAFixedSeed) {
  CircuitBreaker a(FastOptions());
  CircuitBreaker b(FastOptions());
  for (int round = 0; round < 5; ++round) {
    a.RecordFailure();
    b.RecordFailure();
    a.RecordFailure();
    b.RecordFailure();
    EXPECT_EQ(a.open_ticks_remaining(), b.open_ticks_remaining());
    TickUntilHalfOpen(&a);
    TickUntilHalfOpen(&b);
    a.RecordSuccess();
    b.RecordSuccess();
  }
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  BreakerOptions options = FastOptions();
  options.failure_threshold = 0;
  CircuitBreaker breaker(options);
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 20; ++i) {
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowProbe());
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(std::string(BreakerStateName(CircuitBreaker::State::kClosed)),
            "closed");
  EXPECT_EQ(std::string(BreakerStateName(CircuitBreaker::State::kOpen)),
            "open");
  EXPECT_EQ(std::string(BreakerStateName(CircuitBreaker::State::kHalfOpen)),
            "half-open");
}

}  // namespace
}  // namespace dwc
