// End-to-end soak: a star-schema warehouse with a summary table absorbs a
// long interleaved stream of single-relation updates, multi-relation
// transactions and translated queries. After every step the warehouse must
// equal ground truth, the summary must equal re-aggregation, query answers
// must match direct evaluation, and the sources must never be queried.

#include <gtest/gtest.h>

#include "aggregate/aggregate_view.h"
#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace {

class SoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoakTest, LongMixedStreamStaysConsistent) {
  StarSchemaConfig config;
  config.customers = 15;
  config.suppliers = 6;
  config.parts = 20;
  config.locations = 4;
  config.orders = 50;
  config.sales = 120;
  config.seed = GetParam();
  Result<StarSchema> star = BuildStarSchema(config);
  DWC_ASSERT_OK(star);
  auto spec = std::make_shared<WarehouseSpec>(
      *SpecifyWarehouse(star->catalog, star->views));
  Source source(star->db);
  Result<Warehouse> warehouse = Warehouse::Load(spec, source.db());
  DWC_ASSERT_OK(warehouse);

  AggregateViewDef agg;
  agg.name = "UnitsByRegion";
  agg.source = Expr::Base("FactSales");
  agg.group_by = {"supp_region"};
  agg.aggregates = {{AggFunc::kCount, "", "n"},
                    {AggFunc::kSum, "quantity", "units"},
                    {AggFunc::kMin, "quantity", "lo"},
                    {AggFunc::kMax, "quantity", "hi"}};
  DWC_ASSERT_OK(warehouse->AddAggregateView(agg));

  const char* queries[] = {
      "project[cust_name](select[order_month <= 3](Orders JOIN Customer))",
      "project[part_name](Sales JOIN Part) minus "
      "project[part_name](select[supp_region = 'emea']"
      "(Sales JOIN Supplier JOIN Part))",
      "select[quantity >= 25](Sales) JOIN Supplier",
  };

  Rng rng(GetParam() * 31 + 7);
  std::vector<std::string> updatable = {"Sales", "Orders", "Customer",
                                        "Supplier", "Part", "Location"};
  UpdateStreamOptions options;
  options.max_inserts = 3;
  options.max_deletes = 2;
  options.db_options.int_domain = 100000;

  for (int step = 0; step < 40; ++step) {
    if (step % 5 == 4) {
      // A transaction touching up to three relations. Each op must be
      // generated against the state with the previous ops applied, or the
      // combination could violate the inclusion dependencies; a scratch
      // source tracks that intermediate state.
      std::vector<UpdateOp> ops;
      Source scratch(source.db());
      size_t n = 1 + rng.Below(3);
      for (size_t i = 0; i < n; ++i) {
        Result<UpdateOp> op = GenerateRandomUpdate(
            scratch.db(), updatable[rng.Below(updatable.size())], &rng,
            options);
        DWC_ASSERT_OK(op);
        DWC_ASSERT_OK(scratch.Apply(*op));
        ops.push_back(std::move(op).value());
      }
      Result<std::vector<CanonicalDelta>> deltas =
          source.ApplyTransaction(ops);
      DWC_ASSERT_OK(deltas);
      DWC_ASSERT_OK(warehouse->IntegrateTransaction(*deltas));
    } else {
      Result<UpdateOp> op = GenerateRandomUpdate(
          source.db(), updatable[rng.Below(updatable.size())], &rng,
          options);
      DWC_ASSERT_OK(op);
      Result<CanonicalDelta> delta = source.Apply(*op);
      DWC_ASSERT_OK(delta);
      DWC_ASSERT_OK(warehouse->Integrate(*delta));
    }
    DWC_ASSERT_OK(source.db().ValidateConstraints());
    DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));

    // Summary table equals fresh re-aggregation.
    {
      SchemaResolver resolver = spec->WarehouseResolver();
      Result<AggregateView> fresh = AggregateView::Create(agg, resolver);
      DWC_ASSERT_OK(fresh);
      Environment env = Environment::FromDatabase(warehouse->state());
      DWC_ASSERT_OK(fresh->Initialize(env));
      const AggregateView* live = warehouse->FindAggregate("UnitsByRegion");
      ASSERT_NE(live, nullptr);
      ASSERT_TRUE(testing::RelationsEqual(live->materialized(),
                                          fresh->materialized()))
          << "step " << step;
    }

    // Translated queries match direct evaluation at the sources.
    if (step % 4 == 0) {
      for (const char* text : queries) {
        Result<ExprRef> query = ParseExpr(text);
        DWC_ASSERT_OK(query);
        Result<Relation> at_warehouse = warehouse->AnswerQuery(*query);
        DWC_ASSERT_OK(at_warehouse);
        Environment source_env = Environment::FromDatabase(source.db());
        Result<Relation> direct = EvalExpr(**query, source_env);
        DWC_ASSERT_OK(direct);
        ASSERT_TRUE(testing::RelationsEqual(*at_warehouse, *direct))
            << "step " << step << " query " << text;
      }
    }
  }
  EXPECT_EQ(source.query_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dwc
