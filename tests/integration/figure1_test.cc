// E1 / E2 (DESIGN.md): the paper's running example end to end.
//
// Figure 1: warehouse view Sold = Sale |x| Emp over the Sales and Company
// databases. Example 1.1 derives the complement {C1, C2}; Example 1.2 shows
// query independence of the augmented warehouse; Example 2.4 shows that the
// referential-integrity constraint clerk(Sale) <= clerk(Emp) empties C2.

#include <gtest/gtest.h>

#include "core/complement.h"
#include "core/query_translation.h"
#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace {

using ::dwc::testing::Figure1Script;
using ::dwc::testing::I;
using ::dwc::testing::MustRun;
using ::dwc::testing::RelationsEqual;
using ::dwc::testing::S;
using ::dwc::testing::T;

class Figure1Test : public ::testing::TestWithParam<bool> {
 protected:
  // Param: with_constraints.
  void SetUp() override {
    context_ = MustRun(Figure1Script(GetParam()));
    ComplementOptions options;
    options.use_constraints = GetParam();
    Result<WarehouseSpec> spec = SpecifyWarehouse(
        context_.catalog, context_.views, options);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
  }

  ScriptContext context_;
  std::shared_ptr<WarehouseSpec> spec_;
};

INSTANTIATE_TEST_SUITE_P(WithAndWithoutConstraints, Figure1Test,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "WithConstraints"
                                             : "NoConstraints";
                         });

TEST_P(Figure1Test, ComplementShape) {
  // Example 1.1: C1 = Emp \ pi_{clerk,age}(Sold),
  //              C2 = Sale \ pi_{item,clerk}(Sold).
  // Example 2.4: with referential integrity, C2 is provably empty.
  const ComplementResult& complement = spec_->complement();
  const BaseComplementInfo* emp = complement.FindBase("Emp");
  const BaseComplementInfo* sale = complement.FindBase("Sale");
  ASSERT_NE(emp, nullptr);
  ASSERT_NE(sale, nullptr);
  EXPECT_FALSE(emp->provably_empty);
  EXPECT_EQ(sale->provably_empty, GetParam());
  if (GetParam()) {
    // Only C_Emp is materialized.
    ASSERT_EQ(spec_->complements().size(), 1u);
    EXPECT_EQ(spec_->complements()[0].name, "C_Emp");
  } else {
    ASSERT_EQ(spec_->complements().size(), 2u);
  }
}

TEST_P(Figure1Test, ComplementContents) {
  Result<Warehouse> warehouse =
      Warehouse::Load(spec_, context_.db, MaintenanceStrategy::kIncremental);
  DWC_ASSERT_OK(warehouse);

  // C1 must contain exactly Paula (the clerk with no sales).
  const Relation* c_emp = warehouse->FindRelation("C_Emp");
  ASSERT_NE(c_emp, nullptr);
  Relation expected(*spec_->FindWarehouseSchema("C_Emp"));
  expected.Insert(T({S("Paula"), I(32)}));
  EXPECT_TRUE(RelationsEqual(*c_emp, expected));

  // C2 (when materialized) is empty on this state.
  const Relation* c_sale = warehouse->FindRelation("C_Sale");
  if (GetParam()) {
    EXPECT_EQ(c_sale, nullptr);
  } else {
    ASSERT_NE(c_sale, nullptr);
    EXPECT_TRUE(c_sale->empty());
  }
}

TEST_P(Figure1Test, InverseReconstructsBases) {
  Result<Warehouse> warehouse =
      Warehouse::Load(spec_, context_.db, MaintenanceStrategy::kIncremental);
  DWC_ASSERT_OK(warehouse);
  Result<Database> reconstructed = warehouse->ReconstructSources();
  DWC_ASSERT_OK(reconstructed);
  EXPECT_TRUE(RelationsEqual(*reconstructed->FindRelation("Emp"),
                             *context_.db.FindRelation("Emp")));
  EXPECT_TRUE(RelationsEqual(*reconstructed->FindRelation("Sale"),
                             *context_.db.FindRelation("Sale")));
}

TEST_P(Figure1Test, Example11InsertMaintainedWithoutSourceQueries) {
  Source source(context_.db);
  Result<Warehouse> warehouse =
      Warehouse::Load(spec_, source.db(), MaintenanceStrategy::kIncremental);
  DWC_ASSERT_OK(warehouse);

  // "insert into Sale the tuple <Computer, Paula>".
  UpdateOp op;
  op.relation = "Sale";
  op.inserts.push_back(T({S("Computer"), S("Paula")}));
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));

  // Zero source queries during maintenance.
  EXPECT_EQ(source.query_count(), 0u);

  // The warehouse now matches the new source state exactly.
  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));

  // Sold gained <Computer, Paula, 32>.
  const Relation* sold = warehouse->FindRelation("Sold");
  ASSERT_NE(sold, nullptr);
  EXPECT_EQ(sold->size(), 4u);
  // Paula left C1 (she now appears in Sold).
  const Relation* c_emp = warehouse->FindRelation("C_Emp");
  ASSERT_NE(c_emp, nullptr);
  EXPECT_TRUE(c_emp->empty());
}

TEST_P(Figure1Test, Example11DeletionsMaintained) {
  Source source(context_.db);
  Result<Warehouse> warehouse =
      Warehouse::Load(spec_, source.db(), MaintenanceStrategy::kIncremental);
  DWC_ASSERT_OK(warehouse);

  // Delete Mary's VCR sale, then John's PC sale.
  UpdateOp op1{"Sale", {}, {T({S("VCR"), S("Mary")})}};
  Result<CanonicalDelta> d1 = source.Apply(op1);
  DWC_ASSERT_OK(d1);
  DWC_ASSERT_OK(warehouse->Integrate(*d1));
  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));

  UpdateOp op2{"Sale", {}, {T({S("PC"), S("John")})}};
  Result<CanonicalDelta> d2 = source.Apply(op2);
  DWC_ASSERT_OK(d2);
  DWC_ASSERT_OK(warehouse->Integrate(*d2));
  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));

  // John no longer sells anything: he must have moved into C1.
  const Relation* c_emp = warehouse->FindRelation("C_Emp");
  ASSERT_NE(c_emp, nullptr);
  EXPECT_EQ(c_emp->size(), 2u);  // Paula and John.
  EXPECT_EQ(source.query_count(), 0u);
}

TEST_P(Figure1Test, Example12QueryIndependence) {
  Result<Warehouse> warehouse =
      Warehouse::Load(spec_, context_.db, MaintenanceStrategy::kIncremental);
  DWC_ASSERT_OK(warehouse);

  // Q = pi_clerk(Sale) U pi_clerk(Emp): unanswerable from Sold alone,
  // answerable from the augmented warehouse.
  Result<ExprRef> q =
      ParseExpr("project[clerk](Sale) union project[clerk](Emp)");
  DWC_ASSERT_OK(q);
  Result<Relation> answer = warehouse->AnswerQuery(*q);
  DWC_ASSERT_OK(answer);

  Result<Relation> expected = context_.Evaluate(*q);
  DWC_ASSERT_OK(expected);
  EXPECT_TRUE(RelationsEqual(*answer, *expected));
  EXPECT_EQ(answer->size(), 3u);  // Mary, John, Paula.
}

TEST_P(Figure1Test, Section3AgeOfComputerSellers) {
  // Q = pi_age(sigma_{item='Computer'}(Sale) |x| Emp) from Section 3.
  Source source(context_.db);
  Result<Warehouse> warehouse =
      Warehouse::Load(spec_, source.db(), MaintenanceStrategy::kIncremental);
  DWC_ASSERT_OK(warehouse);

  UpdateOp op{"Sale", {T({S("Computer"), S("Paula")})}, {}};
  Result<CanonicalDelta> delta = source.Apply(op);
  DWC_ASSERT_OK(delta);
  DWC_ASSERT_OK(warehouse->Integrate(*delta));

  Result<ExprRef> q = ParseExpr(
      "project[age](select[item = 'Computer'](Sale) JOIN Emp)");
  DWC_ASSERT_OK(q);
  Result<Relation> answer = warehouse->AnswerQuery(*q);
  DWC_ASSERT_OK(answer);
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ(answer->SortedTuples()[0], T({I(32)}));
  EXPECT_EQ(source.query_count(), 0u);
}

}  // namespace
}  // namespace dwc
