// E13 (DESIGN.md) — Section 5: star-schema warehouses. Dimension copies plus
// foreign-key constraints make every fact-view complement empty, and the
// warehouse maintains itself under fact appends without source queries.

#include <gtest/gtest.h>

#include "core/query_translation.h"
#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "testing/test_util.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"

namespace dwc {
namespace {

class StarSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StarSchemaConfig config;
    config.customers = 20;
    config.suppliers = 8;
    config.parts = 30;
    config.locations = 5;
    config.orders = 60;
    config.sales = 150;
    Result<StarSchema> star = BuildStarSchema(config);
    DWC_ASSERT_OK(star);
    star_ = std::make_unique<StarSchema>(std::move(star).value());
    Result<WarehouseSpec> spec =
        SpecifyWarehouse(star_->catalog, star_->views);
    DWC_ASSERT_OK(spec);
    spec_ = std::make_shared<WarehouseSpec>(std::move(spec).value());
  }

  std::unique_ptr<StarSchema> star_;
  std::shared_ptr<WarehouseSpec> spec_;
};

TEST_F(StarSchemaTest, AllComplementsEmpty) {
  // Dimensions are copied verbatim; the fact joins are total thanks to the
  // foreign keys: nothing needs to be stored beyond V itself.
  for (const BaseComplementInfo& info : spec_->complement().per_base) {
    EXPECT_TRUE(info.provably_empty) << info.base;
  }
  EXPECT_TRUE(spec_->complements().empty());
}

TEST_F(StarSchemaTest, LoadsAndReconstructs) {
  Result<Warehouse> warehouse = Warehouse::Load(spec_, star_->db);
  DWC_ASSERT_OK(warehouse);
  Result<Database> reconstructed = warehouse->ReconstructSources();
  DWC_ASSERT_OK(reconstructed);
  EXPECT_TRUE(reconstructed->SameStateAs(star_->db));
}

TEST_F(StarSchemaTest, SalesAppendsMaintainedLocally) {
  Source source(star_->db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);

  Rng rng(7);
  for (int batch = 0; batch < 5; ++batch) {
    Result<UpdateOp> op = GenerateSalesBatch(source.db(), 10, &rng);
    DWC_ASSERT_OK(op);
    ASSERT_EQ(op->inserts.size(), 10u);
    Result<CanonicalDelta> delta = source.Apply(*op);
    DWC_ASSERT_OK(delta);
    DWC_ASSERT_OK(source.db().ValidateConstraints());
    DWC_ASSERT_OK(warehouse->Integrate(*delta));
  }
  EXPECT_EQ(source.query_count(), 0u);
  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
  EXPECT_EQ(warehouse->FindRelation("FactSales")->size(),
            source.db().FindRelation("Sales")->size());
}

TEST_F(StarSchemaTest, DimensionUpdatesPropagateToFacts) {
  Source source(star_->db);
  Result<Warehouse> warehouse = Warehouse::Load(spec_, source.db());
  DWC_ASSERT_OK(warehouse);

  // A new customer places an order referencing a new location.
  UpdateOp new_cust{"Customer",
                    {testing::T({testing::I(1000), testing::S("acme"),
                                 testing::S("emea")})},
                    {}};
  Result<CanonicalDelta> d1 = source.Apply(new_cust);
  DWC_ASSERT_OK(d1);
  DWC_ASSERT_OK(warehouse->Integrate(*d1));

  UpdateOp new_order{"Orders",
                     {testing::T({testing::I(5000), testing::I(1000),
                                  testing::I(0), testing::I(6)})},
                     {}};
  Result<CanonicalDelta> d2 = source.Apply(new_order);
  DWC_ASSERT_OK(d2);
  DWC_ASSERT_OK(warehouse->Integrate(*d2));

  DWC_ASSERT_OK(CheckConsistency(*warehouse, source.db()));
  EXPECT_EQ(source.query_count(), 0u);

  // OLAP-ish query answered at the warehouse: customers in emea with orders
  // in month 6.
  Result<ExprRef> q = ParseExpr(
      "project[cust_name](select[cust_region = 'emea' and order_month = 6]"
      "(Orders JOIN Customer))");
  DWC_ASSERT_OK(q);
  Result<Relation> answer = warehouse->AnswerQuery(*q);
  DWC_ASSERT_OK(answer);
  Relation expected_contains(answer->schema());
  expected_contains.Insert(testing::T({testing::S("acme")}));
  EXPECT_TRUE(answer->Contains(testing::T({testing::S("acme")})));
}

TEST_F(StarSchemaTest, MaintenancePlanIsBaseFree) {
  Result<MaintenancePlan> plan = DeriveMaintenancePlan(*spec_);
  DWC_ASSERT_OK(plan);
  for (const auto& [relation, per_base] : plan->entries()) {
    for (const auto& [base, delta] : per_base) {
      for (const ExprRef& expr : {delta.plus, delta.minus}) {
        for (const std::string& name : expr->ReferencedNames()) {
          EXPECT_FALSE(spec_->catalog().HasRelation(name))
              << relation << "/" << base << " references base " << name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dwc
